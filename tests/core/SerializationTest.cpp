//===- tests/core/SerializationTest.cpp - Checkpoint round-trip tests -----===//

#include "core/Serialization.h"

#include "core/Primitives.h"
#include "core/Recognition.h"
#include "core/ProgramParser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

using namespace dc;

namespace {

class SerializationTest : public ::testing::Test {
protected:
  void SetUp() override {
    std::vector<ExprPtr> Prims = prims::functionalCore();
    G = Grammar::uniform(Prims);
    G.setLogVariable(-1.25);
    G.productions()[0].LogWeight = 0.5;
    G.addProduction(Expr::invented(parseProgram("(lambda (+ $0 1))")));
  }

  Grammar G;
};

} // namespace

TEST_F(SerializationTest, GrammarRoundTrip) {
  std::stringstream SS;
  serializeGrammar(G, SS);
  std::string Err;
  auto G2 = deserializeGrammar(SS, &Err);
  ASSERT_TRUE(G2.has_value()) << Err;
  ASSERT_EQ(G2->productions().size(), G.productions().size());
  EXPECT_DOUBLE_EQ(G2->logVariable(), G.logVariable());
  for (size_t I = 0; I < G.productions().size(); ++I) {
    EXPECT_EQ(G2->productions()[I].Program, G.productions()[I].Program)
        << "hash-consing must make reparsed programs identical";
    EXPECT_DOUBLE_EQ(G2->productions()[I].LogWeight,
                     G.productions()[I].LogWeight);
  }
  // Inventions survive with their types.
  EXPECT_EQ(G2->inventionCount(), 1);
}

TEST_F(SerializationTest, GrammarRejectsGarbage) {
  std::string Err;
  {
    std::stringstream SS("not a grammar\n");
    EXPECT_FALSE(deserializeGrammar(SS, &Err).has_value());
    EXPECT_FALSE(Err.empty());
  }
  {
    std::stringstream SS("grammar v1\nproduction oops\nend\n");
    EXPECT_FALSE(deserializeGrammar(SS).has_value());
  }
  {
    std::stringstream SS("grammar v1\nlogVariable -1\n"); // no end
    EXPECT_FALSE(deserializeGrammar(SS).has_value());
  }
  {
    std::stringstream SS(
        "grammar v1\nproduction 0.0 (unknown-prim-xyz)\nend\n");
    EXPECT_FALSE(deserializeGrammar(SS).has_value());
  }
}

TEST_F(SerializationTest, FrontierRoundTripByTaskName) {
  TypePtr Req = Type::arrow(tInt(), tInt());
  auto T1 = std::make_shared<Task>("task one", Req, std::vector<Example>{});
  auto T2 = std::make_shared<Task>("task two", Req, std::vector<Example>{});
  std::vector<Frontier> Fs = {Frontier(T1), Frontier(T2)};
  Fs[0].record({parseProgram("(lambda (+ $0 1))"), -3.5, 0.0});
  Fs[0].record({parseProgram("(lambda (+ 1 $0))"), -4.0, 0.0});
  Fs[1].record({parseProgram("(lambda $0)"), -1.0, -0.5});

  std::stringstream SS;
  serializeFrontiers(Fs, SS);

  std::vector<Frontier> Restored = {Frontier(T1), Frontier(T2)};
  std::string Err;
  int N = deserializeFrontiers(Restored, SS, &Err);
  EXPECT_EQ(N, 3) << Err;
  ASSERT_EQ(Restored[0].entries().size(), 2u);
  EXPECT_EQ(Restored[0].best()->Program, Fs[0].best()->Program);
  EXPECT_DOUBLE_EQ(Restored[0].best()->LogPrior, -3.5);
  ASSERT_EQ(Restored[1].entries().size(), 1u);
  EXPECT_DOUBLE_EQ(Restored[1].best()->LogLikelihood, -0.5);
}

TEST_F(SerializationTest, FrontiersForUnknownTasksAreSkipped) {
  TypePtr Req = Type::arrow(tInt(), tInt());
  auto Known = std::make_shared<Task>("known", Req, std::vector<Example>{});
  auto Gone = std::make_shared<Task>("gone", Req, std::vector<Example>{});
  std::vector<Frontier> Fs = {Frontier(Known), Frontier(Gone)};
  Fs[0].record({parseProgram("(lambda $0)"), -1, 0});
  Fs[1].record({parseProgram("(lambda (+ $0 1))"), -2, 0});
  std::stringstream SS;
  serializeFrontiers(Fs, SS);

  std::vector<Frontier> Restored = {Frontier(Known)};
  int N = deserializeFrontiers(Restored, SS);
  EXPECT_EQ(N, 1);
  EXPECT_EQ(Restored[0].entries().size(), 1u);
}

TEST_F(SerializationTest, GoldenGrammarTextIsStable) {
  // The checkpoint format is an interchange format: files written by old
  // builds must keep loading. This pins the exact serialized text, so a
  // formatting change that would orphan existing checkpoints fails here.
  Grammar Golden;
  Golden.setLogVariable(-1.5);
  int I0 = Golden.addProduction(parseProgram("+"));
  Golden.productions()[I0].LogWeight = 0.5;
  int I1 = Golden.addProduction(parseProgram("1"));
  Golden.productions()[I1].LogWeight = -2;
  std::stringstream SS;
  serializeGrammar(Golden, SS);
  EXPECT_EQ(SS.str(), "grammar v1\n"
                      "logVariable -1.5\n"
                      "production 0.5 +\n"
                      "production -2 1\n"
                      "end\n");
}

TEST_F(SerializationTest, GoldenCheckpointTextLoads) {
  // The reverse direction: a checkpoint fixed in the v1 format (as an old
  // build would have written it) must keep deserializing.
  const char *GoldenText = "grammar v1\n"
                           "logVariable -0.25\n"
                           "production 0 #(lambda (+ $0 1))\n"
                           "production -1.5 +\n"
                           "end\n"
                           "frontiers v1\n"
                           "frontier golden task\n"
                           "request int -> int\n"
                           "entry -3.5 0 (lambda (+ $0 1))\n"
                           "entry -4 -0.5 (lambda $0)\n"
                           "end\n";
  std::stringstream SS(GoldenText);
  std::string Err;
  auto G2 = deserializeGrammar(SS, &Err);
  ASSERT_TRUE(G2.has_value()) << Err;
  EXPECT_DOUBLE_EQ(G2->logVariable(), -0.25);
  ASSERT_EQ(G2->productions().size(), 2u);
  EXPECT_EQ(G2->productions()[0].Program,
            Expr::invented(parseProgram("(lambda (+ $0 1))")));
  EXPECT_DOUBLE_EQ(G2->productions()[1].LogWeight, -1.5);

  TypePtr Req = Type::arrow(tInt(), tInt());
  auto T =
      std::make_shared<Task>("golden task", Req, std::vector<Example>{});
  std::vector<Frontier> Fs = {Frontier(T)};
  int N = deserializeFrontiers(Fs, SS, &Err);
  EXPECT_EQ(N, 2) << Err;
  ASSERT_EQ(Fs[0].entries().size(), 2u);
  EXPECT_EQ(Fs[0].best()->Program, parseProgram("(lambda (+ $0 1))"));
  EXPECT_DOUBLE_EQ(Fs[0].best()->LogPrior, -3.5);
}

TEST_F(SerializationTest, FrontierEntriesWithUnknownPrimitivesAreSkipped) {
  // A library shrink between save and load must not poison the whole
  // checkpoint: the unparseable entry is dropped, its neighbors survive.
  const char *Text = "frontiers v1\n"
                     "frontier mixed\n"
                     "entry -1 0 (lambda (vanished-prim $0))\n"
                     "entry -2 0 (lambda (+ $0 1))\n"
                     "end\n";
  TypePtr Req = Type::arrow(tInt(), tInt());
  auto T = std::make_shared<Task>("mixed", Req, std::vector<Example>{});
  std::vector<Frontier> Fs = {Frontier(T)};
  std::stringstream SS(Text);
  std::string Err;
  int N = deserializeFrontiers(Fs, SS, &Err);
  EXPECT_EQ(N, 1) << Err;
  ASSERT_EQ(Fs[0].entries().size(), 1u);
  EXPECT_EQ(Fs[0].best()->Program, parseProgram("(lambda (+ $0 1))"));
}

TEST_F(SerializationTest, FileCheckpointRoundTrip) {
  TypePtr Req = Type::arrow(tInt(), tInt());
  auto T = std::make_shared<Task>("ckpt-task", Req, std::vector<Example>{});
  std::vector<Frontier> Fs = {Frontier(T)};
  Fs[0].record({parseProgram("(lambda (+ $0 1))"), -3.0, 0.0});

  std::string Path = testing::TempDir() + "/dc_checkpoint_test.txt";
  ASSERT_TRUE(saveCheckpoint(Path, G, Fs));

  Grammar G2;
  std::vector<Frontier> Fs2 = {Frontier(T)};
  std::string Err;
  ASSERT_TRUE(loadCheckpoint(Path, G2, Fs2, &Err)) << Err;
  EXPECT_EQ(G2.productions().size(), G.productions().size());
  ASSERT_FALSE(Fs2[0].empty());
  EXPECT_EQ(Fs2[0].best()->Program, Fs[0].best()->Program);
  std::remove(Path.c_str());
}

TEST_F(SerializationTest, LoadRejectsMissingFile) {
  Grammar G2;
  std::vector<Frontier> Fs;
  std::string Err;
  EXPECT_FALSE(loadCheckpoint("/nonexistent/path/ckpt", G2, Fs, &Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Recognition model round-trip (the dc_serve --model load path)
//===----------------------------------------------------------------------===//

TEST_F(SerializationTest, RecognitionModelRoundTrip) {
  // Train a small model, save it, load it against the same grammar and
  // featurizer, and require bit-exact restoration: identical parameter
  // fingerprint and bit-identical predict() grammars. Anything weaker
  // would make served answers depend on whether the model came from
  // training or from a checkpoint.
  Grammar Base = Grammar::uniform(prims::functionalCore());
  IoFeaturizer Featurizer;
  RecognitionParams RP;
  RP.HiddenDim = 16;
  RP.TrainingSteps = 120;
  RP.Seed = 3;
  RecognitionModel Model(Base, Featurizer, RP);

  std::vector<Example> Ex;
  for (long X : {1, 2, 3, 5, 8})
    Ex.push_back({{Value::makeInt(X)}, Value::makeInt(X + 1)});
  auto T = std::make_shared<Task>("inc", Type::arrow(tInt(), tInt()), Ex);
  Model.trainOnPairs({{T, parseProgram("(lambda (+ $0 1))"), -3.0}});

  std::stringstream SS;
  saveRecognitionModel(Model, SS);
  std::string Err;
  std::unique_ptr<RecognitionModel> Loaded =
      loadRecognitionModel(Base, Featurizer, SS, &Err);
  ASSERT_TRUE(Loaded) << Err;

  EXPECT_EQ(Loaded->weightFingerprint(), Model.weightFingerprint());
  EXPECT_EQ(Loaded->slotCount(), Model.slotCount());
  EXPECT_EQ(Loaded->childCount(), Model.childCount());

  ContextualGrammar Want = Model.predict(*T);
  ContextualGrammar Got = Loaded->predict(*T);
  ASSERT_EQ(Got.parentCount(), Want.parentCount());
  for (int Parent = -2; Parent <
       static_cast<int>(Want.productions().size());
       ++Parent)
    for (int Arg = 0; Arg < Want.maxArity(); ++Arg) {
      const Grammar &W = Want.slot(Parent, Arg);
      const Grammar &L = Got.slot(Parent, Arg);
      ASSERT_EQ(W.productions().size(), L.productions().size());
      EXPECT_EQ(W.logVariable(), L.logVariable()); // bit-identical
      for (size_t I = 0; I < W.productions().size(); ++I)
        EXPECT_EQ(W.productions()[I].LogWeight,
                  L.productions()[I].LogWeight);
    }
}

TEST_F(SerializationTest, RecognitionModelRejectsShapeMismatch) {
  Grammar Base = Grammar::uniform(prims::functionalCore());
  IoFeaturizer Featurizer;
  RecognitionParams RP;
  RP.HiddenDim = 16;
  RP.TrainingSteps = 10;
  RecognitionModel Model(Base, Featurizer, RP);

  std::stringstream SS;
  saveRecognitionModel(Model, SS);

  // A grammar with a different production count cannot host the saved
  // net: the output head's width no longer matches.
  Grammar Smaller = Grammar::uniform(
      {prims::functionalCore()[0], prims::functionalCore()[1]});
  std::string Err;
  EXPECT_EQ(loadRecognitionModel(Smaller, Featurizer, SS, &Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST_F(SerializationTest, RecognitionModelRejectsGarbage) {
  Grammar Base = Grammar::uniform(prims::functionalCore());
  IoFeaturizer Featurizer;
  std::istringstream Bad("recognition v1\nhidden nope\n");
  std::string Err;
  EXPECT_EQ(loadRecognitionModel(Base, Featurizer, Bad, &Err), nullptr);
  EXPECT_FALSE(Err.empty());
}
