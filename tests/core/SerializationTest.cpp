//===- tests/core/SerializationTest.cpp - Checkpoint round-trip tests -----===//

#include "core/Serialization.h"

#include "core/Primitives.h"
#include "core/ProgramParser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

using namespace dc;

namespace {

class SerializationTest : public ::testing::Test {
protected:
  void SetUp() override {
    std::vector<ExprPtr> Prims = prims::functionalCore();
    G = Grammar::uniform(Prims);
    G.setLogVariable(-1.25);
    G.productions()[0].LogWeight = 0.5;
    G.addProduction(Expr::invented(parseProgram("(lambda (+ $0 1))")));
  }

  Grammar G;
};

} // namespace

TEST_F(SerializationTest, GrammarRoundTrip) {
  std::stringstream SS;
  serializeGrammar(G, SS);
  std::string Err;
  auto G2 = deserializeGrammar(SS, &Err);
  ASSERT_TRUE(G2.has_value()) << Err;
  ASSERT_EQ(G2->productions().size(), G.productions().size());
  EXPECT_DOUBLE_EQ(G2->logVariable(), G.logVariable());
  for (size_t I = 0; I < G.productions().size(); ++I) {
    EXPECT_EQ(G2->productions()[I].Program, G.productions()[I].Program)
        << "hash-consing must make reparsed programs identical";
    EXPECT_DOUBLE_EQ(G2->productions()[I].LogWeight,
                     G.productions()[I].LogWeight);
  }
  // Inventions survive with their types.
  EXPECT_EQ(G2->inventionCount(), 1);
}

TEST_F(SerializationTest, GrammarRejectsGarbage) {
  std::string Err;
  {
    std::stringstream SS("not a grammar\n");
    EXPECT_FALSE(deserializeGrammar(SS, &Err).has_value());
    EXPECT_FALSE(Err.empty());
  }
  {
    std::stringstream SS("grammar v1\nproduction oops\nend\n");
    EXPECT_FALSE(deserializeGrammar(SS).has_value());
  }
  {
    std::stringstream SS("grammar v1\nlogVariable -1\n"); // no end
    EXPECT_FALSE(deserializeGrammar(SS).has_value());
  }
  {
    std::stringstream SS(
        "grammar v1\nproduction 0.0 (unknown-prim-xyz)\nend\n");
    EXPECT_FALSE(deserializeGrammar(SS).has_value());
  }
}

TEST_F(SerializationTest, FrontierRoundTripByTaskName) {
  TypePtr Req = Type::arrow(tInt(), tInt());
  auto T1 = std::make_shared<Task>("task one", Req, std::vector<Example>{});
  auto T2 = std::make_shared<Task>("task two", Req, std::vector<Example>{});
  std::vector<Frontier> Fs = {Frontier(T1), Frontier(T2)};
  Fs[0].record({parseProgram("(lambda (+ $0 1))"), -3.5, 0.0});
  Fs[0].record({parseProgram("(lambda (+ 1 $0))"), -4.0, 0.0});
  Fs[1].record({parseProgram("(lambda $0)"), -1.0, -0.5});

  std::stringstream SS;
  serializeFrontiers(Fs, SS);

  std::vector<Frontier> Restored = {Frontier(T1), Frontier(T2)};
  std::string Err;
  int N = deserializeFrontiers(Restored, SS, &Err);
  EXPECT_EQ(N, 3) << Err;
  ASSERT_EQ(Restored[0].entries().size(), 2u);
  EXPECT_EQ(Restored[0].best()->Program, Fs[0].best()->Program);
  EXPECT_DOUBLE_EQ(Restored[0].best()->LogPrior, -3.5);
  ASSERT_EQ(Restored[1].entries().size(), 1u);
  EXPECT_DOUBLE_EQ(Restored[1].best()->LogLikelihood, -0.5);
}

TEST_F(SerializationTest, FrontiersForUnknownTasksAreSkipped) {
  TypePtr Req = Type::arrow(tInt(), tInt());
  auto Known = std::make_shared<Task>("known", Req, std::vector<Example>{});
  auto Gone = std::make_shared<Task>("gone", Req, std::vector<Example>{});
  std::vector<Frontier> Fs = {Frontier(Known), Frontier(Gone)};
  Fs[0].record({parseProgram("(lambda $0)"), -1, 0});
  Fs[1].record({parseProgram("(lambda (+ $0 1))"), -2, 0});
  std::stringstream SS;
  serializeFrontiers(Fs, SS);

  std::vector<Frontier> Restored = {Frontier(Known)};
  int N = deserializeFrontiers(Restored, SS);
  EXPECT_EQ(N, 1);
  EXPECT_EQ(Restored[0].entries().size(), 1u);
}

TEST_F(SerializationTest, FileCheckpointRoundTrip) {
  TypePtr Req = Type::arrow(tInt(), tInt());
  auto T = std::make_shared<Task>("ckpt-task", Req, std::vector<Example>{});
  std::vector<Frontier> Fs = {Frontier(T)};
  Fs[0].record({parseProgram("(lambda (+ $0 1))"), -3.0, 0.0});

  std::string Path = testing::TempDir() + "/dc_checkpoint_test.txt";
  ASSERT_TRUE(saveCheckpoint(Path, G, Fs));

  Grammar G2;
  std::vector<Frontier> Fs2 = {Frontier(T)};
  std::string Err;
  ASSERT_TRUE(loadCheckpoint(Path, G2, Fs2, &Err)) << Err;
  EXPECT_EQ(G2.productions().size(), G.productions().size());
  ASSERT_FALSE(Fs2[0].empty());
  EXPECT_EQ(Fs2[0].best()->Program, Fs[0].best()->Program);
  std::remove(Path.c_str());
}

TEST_F(SerializationTest, LoadRejectsMissingFile) {
  Grammar G2;
  std::vector<Frontier> Fs;
  std::string Err;
  EXPECT_FALSE(loadCheckpoint("/nonexistent/path/ckpt", G2, Fs, &Err));
  EXPECT_FALSE(Err.empty());
}
