//===- tests/core/ProgramTest.cpp - Program representation unit tests -----===//

#include "core/Primitives.h"
#include "core/Program.h"
#include "core/ProgramParser.h"

#include <gtest/gtest.h>

using namespace dc;

namespace {

/// Registers the shared primitives once for every test in this file.
class ProgramTest : public ::testing::Test {
protected:
  void SetUp() override {
    prims::functionalCore();
    prims::arithmeticExtras();
  }
};

} // namespace

TEST_F(ProgramTest, HashConsingGivesPointerEquality) {
  ExprPtr A = Expr::application(lookupPrimitive("+"), Expr::index(0));
  ExprPtr B = Expr::application(lookupPrimitive("+"), Expr::index(0));
  EXPECT_EQ(A, B);
  EXPECT_EQ(Expr::index(3), Expr::index(3));
  EXPECT_NE(Expr::index(3), Expr::index(4));
}

TEST_F(ProgramTest, ShowRendersSpine) {
  ExprPtr P = Expr::abstraction(Expr::applications(
      lookupPrimitive("+"), {Expr::index(0), lookupPrimitive("1")}));
  EXPECT_EQ(P->show(), "(lambda (+ $0 1))");
}

TEST_F(ProgramTest, ParseRoundTrip) {
  const char *Sources[] = {
      "(lambda (+ $0 1))",
      "(lambda (map (lambda (+ $0 $0)) $0))",
      "(lambda (fold (lambda (lambda (+ $0 $1))) 0 $0))",
      "$0",
      "(lambda (if (is-nil $0) 0 (car $0)))",
  };
  for (const char *Src : Sources) {
    std::string Err;
    ExprPtr P = parseProgram(Src, &Err);
    ASSERT_NE(P, nullptr) << Src << ": " << Err;
    EXPECT_EQ(P->show(), Src);
    // Parsing the rendering must intern to the same node.
    EXPECT_EQ(parseProgram(P->show()), P);
  }
}

TEST_F(ProgramTest, ParseErrors) {
  std::string Err;
  EXPECT_EQ(parseProgram("(lambda", &Err), nullptr);
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(parseProgram("(unknown-prim 1)", &Err), nullptr);
  EXPECT_EQ(parseProgram("($)", &Err), nullptr);
  EXPECT_EQ(parseProgram("", &Err), nullptr);
  EXPECT_EQ(parseProgram("(lambda $0) extra", &Err), nullptr);
}

TEST_F(ProgramTest, SizeAndDepth) {
  ExprPtr P = parseProgram("(lambda (+ $0 1))");
  ASSERT_NE(P, nullptr);
  // lambda, app, app, +, $0, 1 — with the spine counted as binary apps.
  EXPECT_EQ(P->size(), 6);
  EXPECT_EQ(P->depth(), 4);
}

TEST_F(ProgramTest, FreeVariables) {
  EXPECT_TRUE(parseProgram("(lambda $0)")->isClosed());
  EXPECT_FALSE(Expr::index(0)->isClosed());
  ExprPtr Nested = parseProgram("(lambda (lambda $1))");
  EXPECT_TRUE(Nested->isClosed());
  ExprPtr Escaping = Expr::abstraction(Expr::index(1));
  EXPECT_FALSE(Escaping->isClosed());
}

TEST_F(ProgramTest, ShiftRespectsCutoff) {
  // (lambda ($0 $1)): $0 is bound, $1 free.
  ExprPtr P = Expr::abstraction(
      Expr::application(Expr::index(0), Expr::index(1)));
  ExprPtr Shifted = P->shift(2);
  ASSERT_NE(Shifted, nullptr);
  EXPECT_EQ(Shifted->show(), "(lambda ($0 $3))");
  // Shifting below zero fails.
  EXPECT_EQ(Expr::index(0)->shift(-1), nullptr);
}

TEST_F(ProgramTest, BetaReduction) {
  // ((lambda (+ $0 1)) 1) reduces to (+ 1 1).
  ExprPtr Redex =
      Expr::application(parseProgram("(lambda (+ $0 1))"),
                        lookupPrimitive("1"));
  EXPECT_EQ(Redex->betaNormalForm()->show(), "(+ 1 1)");
}

TEST_F(ProgramTest, BetaReductionUnderBinders) {
  // (lambda ((lambda $0) $0)) reduces to (lambda $0).
  ExprPtr P = parseProgram("(lambda ((lambda $0) $0))");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->betaNormalForm()->show(), "(lambda $0)");
}

TEST_F(ProgramTest, BetaNormalFormNullWhenBudgetExhausted) {
  // Ω = ((lambda ($0 $0)) (lambda ($0 $0))) reduces to itself forever; a
  // bounded normalizer must report failure, not hand back a half-reduced
  // term for callers to score or print.
  ExprPtr Omega = parseProgram("((lambda ($0 $0)) (lambda ($0 $0)))");
  ASSERT_NE(Omega, nullptr);
  EXPECT_EQ(Omega->betaNormalForm(8), nullptr);

  // A terminating chain of duplicating redexes: C_0 = 1 and
  // C_n = ((lambda (+ $0 $0)) C_{n-1}) needs 2^n - 1 leftmost-outermost
  // steps, so a too-small budget fails while a sufficient one converges.
  std::string Src = "1";
  for (int I = 0; I < 10; ++I)
    Src = "((lambda (+ $0 $0)) " + Src + ")";
  ExprPtr Chain = parseProgram(Src);
  ASSERT_NE(Chain, nullptr);
  EXPECT_EQ(Chain->betaNormalForm(512), nullptr);
  ExprPtr Normal = Chain->betaNormalForm(2048);
  ASSERT_NE(Normal, nullptr);
  EXPECT_TRUE(Normal->isClosed());
}

TEST_F(ProgramTest, TypeInferenceSimple) {
  TypePtr T = parseProgram("(lambda (+ $0 1))")->inferType();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->show(), "int -> int");
}

TEST_F(ProgramTest, TypeInferencePolymorphic) {
  TypePtr T = parseProgram("(lambda (map (lambda $0) $0))")->inferType();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->show(), "list(t0) -> list(t0)");
}

TEST_F(ProgramTest, TypeInferenceHigherOrder) {
  TypePtr T = parseProgram("(lambda (lambda (map $1 $0)))")->inferType();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->show(), "(t0 -> t1) -> list(t0) -> list(t1)");
}

TEST_F(ProgramTest, IllTypedProgramsRejected) {
  EXPECT_EQ(parseProgram("(+ 1 nil)")->inferType(), nullptr);
  EXPECT_EQ(parseProgram("(car 1)")->inferType(), nullptr);
  // Self-application is untypeable in HM.
  EXPECT_EQ(parseProgram("(lambda ($0 $0))")->inferType(), nullptr);
}

TEST_F(ProgramTest, InventionsParseAndType) {
  std::string Err;
  ExprPtr Inv = parseProgram("#(lambda (+ $0 1))", &Err);
  ASSERT_NE(Inv, nullptr) << Err;
  EXPECT_TRUE(Inv->isInvented());
  EXPECT_EQ(Inv->declaredType()->show(), "int -> int");
  EXPECT_EQ(Inv->size(), 1) << "inventions count as a single token";

  ExprPtr Use = parseProgram("(lambda (#(lambda (+ $0 1)) $0))", &Err);
  ASSERT_NE(Use, nullptr) << Err;
  EXPECT_EQ(Use->inferType()->show(), "int -> int");
}

TEST_F(ProgramTest, InventionBodyMustBeClosed) {
  std::string Err;
  EXPECT_EQ(parseProgram("#((+ $0 1))", &Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST_F(ProgramTest, StripInventions) {
  ExprPtr Use = parseProgram("(lambda (#(lambda (+ $0 1)) $0))");
  ASSERT_NE(Use, nullptr);
  EXPECT_EQ(Use->stripInventions()->show(),
            "(lambda ((lambda (+ $0 1)) $0))");
}

TEST_F(ProgramTest, InventionDepth) {
  ExprPtr Base = parseProgram("(lambda (+ $0 1))");
  EXPECT_EQ(Base->inventionDepth(), 0);
  ExprPtr Inv1 = Expr::invented(Base);
  EXPECT_EQ(Inv1->inventionDepth(), 1);
  // An invention whose body calls Inv1 has depth 2.
  ExprPtr Body2 = Expr::abstraction(
      Expr::application(Inv1, Expr::application(Inv1, Expr::index(0))));
  ExprPtr Inv2 = Expr::invented(Body2);
  EXPECT_EQ(Inv2->inventionDepth(), 2);
}

TEST_F(ProgramTest, ApplicationSpine) {
  ExprPtr P = parseProgram("(+ 1 0)");
  auto [Head, Args] = applicationSpine(P);
  EXPECT_EQ(Head, lookupPrimitive("+"));
  ASSERT_EQ(Args.size(), 2u);
  EXPECT_EQ(Args[0], lookupPrimitive("1"));
  EXPECT_EQ(Args[1], lookupPrimitive("0"));
}

TEST_F(ProgramTest, SubexpressionsDeduplicated) {
  ExprPtr P = parseProgram("(+ 1 1)");
  auto Subs = P->subexpressions();
  // (+ 1 1), (+ 1), +, 1 — the second "1" is shared.
  EXPECT_EQ(Subs.size(), 4u);
}

TEST_F(ProgramTest, RequireNormalFormPassesThroughSuccess) {
  ExprPtr Reduced =
      requireNormalForm(parseProgram("((lambda $0) 1)")->betaNormalForm());
  ASSERT_NE(Reduced, nullptr);
  EXPECT_EQ(Reduced->show(), "1");
}

TEST_F(ProgramTest, RequireNormalFormDiesOnExhaustion) {
  // The assertion helper turns the silent null footgun into a loud debug
  // failure at call sites that believe exhaustion cannot happen. (The
  // repo builds with assertions on in every configuration.)
  ExprPtr Omega = parseProgram("((lambda ($0 $0)) (lambda ($0 $0)))");
  ASSERT_NE(Omega, nullptr);
  EXPECT_DEATH((void)requireNormalForm(Omega->betaNormalForm(8)),
               "exhausted its step budget");
}
