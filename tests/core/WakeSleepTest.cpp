//===- tests/core/WakeSleepTest.cpp - Wake-sleep integration tests --------===//
//
// End-to-end behavior of the full loop at miniature scale: each variant
// runs, solves something, and produces internally consistent results
// (frontier programs actually solve their tasks; rewritten libraries stay
// sound).
//
//===----------------------------------------------------------------------===//

#include "core/WakeSleep.h"
#include "domains/ListDomain.h"
#include "obs/Telemetry.h"

#include <gtest/gtest.h>

using namespace dc;

namespace {

/// A miniature list domain so every variant runs in seconds: only task
/// families with short base-language solutions.
DomainSpec miniDomain() {
  DomainSpec D = makeListDomain(1);
  D.Search.NodeBudget = 100000;
  D.Search.MaxBudget = 12.0;
  std::vector<TaskPtr> All = D.TrainTasks;
  All.insert(All.end(), D.TestTasks.begin(), D.TestTasks.end());
  auto Pick = [&](std::initializer_list<const char *> Names) {
    std::vector<TaskPtr> Out;
    for (const char *N : Names)
      for (const TaskPtr &T : All)
        if (T->name() == N)
          Out.push_back(T);
    return Out;
  };
  D.TrainTasks = Pick({"identity", "length", "head", "drop-first",
                       "singleton-head", "length-plus-one"});
  D.TestTasks = Pick({"last", "prepend-zero"});
  return D;
}

WakeSleepConfig miniConfig(SystemVariant V) {
  WakeSleepConfig C;
  C.Variant = V;
  C.Iterations = 2;
  C.EvaluateTestEachCycle = false;
  C.Recog.TrainingSteps = 300;
  C.Recog.FantasyCount = 30;
  C.Seed = 12;
  return C;
}

/// Flattens everything determinism covers — learned library, every
/// frontier program, and all per-cycle metrics — into one comparable
/// string.
std::string resultSignature(const WakeSleepResult &R) {
  std::string Sig;
  for (const Production &P : R.FinalGrammar.productions())
    Sig += P.Program->show() + ";";
  for (const Frontier &F : R.TrainFrontiers) {
    Sig += "[";
    for (const FrontierEntry &E : F.entries())
      Sig += E.Program->show() + ",";
    Sig += "]";
  }
  for (const CycleMetrics &M : R.Cycles) {
    Sig += "|" + std::to_string(M.TrainSolvedCumulative) + "," +
           std::to_string(M.LibrarySize) + "," +
           std::to_string(M.WakeNodesExpanded);
    for (long E : M.SolveEffort)
      Sig += "," + std::to_string(E);
  }
  return Sig;
}

} // namespace

TEST(WakeSleep, FullVariantRunsAndSolves) {
  DomainSpec D = miniDomain();
  WakeSleepResult R = runWakeSleep(D, miniConfig(SystemVariant::Full));
  EXPECT_GT(R.trainSolved(), 0);
  EXPECT_EQ(R.Cycles.size(), 2u);
  EXPECT_EQ(R.TrainFrontiers.size(), D.TrainTasks.size());
  // Every recorded program must actually solve its task.
  for (const Frontier &F : R.TrainFrontiers)
    for (const FrontierEntry &E : F.entries())
      EXPECT_EQ(F.task()->logLikelihood(E.Program), 0.0)
          << F.task()->name() << ": " << E.Program->show();
}

TEST(WakeSleep, AllVariantsRun) {
  DomainSpec D = miniDomain();
  for (SystemVariant V :
       {SystemVariant::NoRecognition, SystemVariant::NoAbstraction,
        SystemVariant::MemorizeNoRec, SystemVariant::MemorizeRec,
        SystemVariant::Ec, SystemVariant::Ec2,
        SystemVariant::EnumerationOnly}) {
    WakeSleepResult R = runWakeSleep(D, miniConfig(V));
    EXPECT_GT(R.trainSolved(), 0) << variantName(V);
  }
}

TEST(WakeSleep, MemorizeGrowsLibraryWithWholeSolutions) {
  DomainSpec D = miniDomain();
  WakeSleepResult R =
      runWakeSleep(D, miniConfig(SystemVariant::MemorizeNoRec));
  EXPECT_GE(R.FinalGrammar.inventionCount(), R.trainSolved() - 1);
}

TEST(WakeSleep, EnumerationOnlyNeverChangesLibrary) {
  DomainSpec D = miniDomain();
  WakeSleepResult R =
      runWakeSleep(D, miniConfig(SystemVariant::EnumerationOnly));
  EXPECT_EQ(R.FinalGrammar.inventionCount(), 0);
  EXPECT_EQ(R.FinalGrammar.productions().size(), D.BasePrimitives.size());
}

TEST(WakeSleep, MinibatchRestrictsWakeWork) {
  DomainSpec D = miniDomain();
  WakeSleepConfig C = miniConfig(SystemVariant::NoRecognition);
  C.MinibatchSize = 2;
  C.Iterations = 1;
  WakeSleepResult R = runWakeSleep(D, C);
  // At most the two minibatch tasks can be solved after one cycle.
  EXPECT_LE(R.trainSolved(), 2);
}

TEST(WakeSleep, MetricsAreMonotoneAndConsistent) {
  DomainSpec D = miniDomain();
  WakeSleepConfig C = miniConfig(SystemVariant::NoRecognition);
  C.Iterations = 3;
  WakeSleepResult R = runWakeSleep(D, C);
  int Prev = 0;
  for (const CycleMetrics &M : R.Cycles) {
    EXPECT_GE(M.TrainSolvedCumulative, Prev)
        << "cumulative solving cannot regress";
    Prev = M.TrainSolvedCumulative;
    EXPECT_GE(M.LibrarySize,
              static_cast<int>(D.BasePrimitives.size()));
  }
  EXPECT_EQ(R.Cycles.back().TrainSolvedCumulative, R.trainSolved());
}

TEST(WakeSleep, ResultsIdenticalAcrossThreadCounts) {
  // End-to-end determinism: the full loop (guided + fallback wake search,
  // compression, dreamed recognition training) produces identical results
  // whether the thread pool is off or saturated.
  auto Run = [&](int Threads) {
    DomainSpec D = miniDomain();
    WakeSleepConfig C = miniConfig(SystemVariant::Full);
    C.NumThreads = Threads;
    return resultSignature(runWakeSleep(D, C));
  };
  const std::string Serial = Run(1);
  EXPECT_EQ(Run(8), Serial);
}

TEST(WakeSleep, ResultsIdenticalWithTelemetry) {
  // The determinism contract from obs/Telemetry.h: telemetry is
  // write-only, so flipping it on changes what gets *recorded*, never
  // what gets *computed* — at any thread count.
  auto Run = [&](int Threads, bool Telemetry) {
    dc::obs::TelemetryScope Scope(Telemetry);
    DomainSpec D = miniDomain();
    WakeSleepConfig C = miniConfig(SystemVariant::Full);
    C.NumThreads = Threads;
    return resultSignature(runWakeSleep(D, C));
  };
  for (int Threads : {1, 4}) {
    const std::string Off = Run(Threads, false);
    EXPECT_EQ(Run(Threads, true), Off) << "threads=" << Threads;
  }
}

TEST(WakeSleep, VariantNamesAreStable) {
  EXPECT_STREQ(variantName(SystemVariant::Full), "DreamCoder");
  EXPECT_STREQ(variantName(SystemVariant::Ec2), "EC2 (batched)");
  EXPECT_STREQ(variantName(SystemVariant::EnumerationOnly), "Enumeration");
}
