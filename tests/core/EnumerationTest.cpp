//===- tests/core/EnumerationTest.cpp - Enumerative search unit tests -----===//

#include "core/Enumeration.h"
#include "core/Primitives.h"
#include "core/ThreadPool.h"
#include "core/ProgramParser.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>

using namespace dc;

namespace {

class EnumerationTest : public ::testing::Test {
protected:
  void SetUp() override {
    std::vector<ExprPtr> Core = prims::functionalCore();
    std::vector<ExprPtr> Extra = prims::arithmeticExtras();
    Core.insert(Core.end(), Extra.begin(), Extra.end());
    G = Grammar::uniform(Core);
  }

  /// Builds an int-list to int-list task from a lambda over longs.
  TaskPtr listTask(const std::string &Name,
                   const std::function<std::vector<long>(
                       const std::vector<long> &)> &F) {
    std::vector<std::vector<long>> Ins = {
        {1, 2, 3}, {4, 0, 7, 2}, {5}, {9, 9}, {}};
    std::vector<Example> Ex;
    for (const auto &In : Ins) {
      std::vector<ValuePtr> Xs, Ys;
      for (long V : In)
        Xs.push_back(Value::makeInt(V));
      for (long V : F(In))
        Ys.push_back(Value::makeInt(V));
      Ex.push_back({{Value::makeList(Xs)}, Value::makeList(Ys)});
    }
    return std::make_shared<Task>(
        Name, Type::arrow(tList(tInt()), tList(tInt())), Ex);
  }

  /// A focused grammar, as the wake phase would have after learning
  /// weights: search under it is orders of magnitude cheaper than under
  /// the full uniform base language.
  Grammar focusedGrammar() {
    std::vector<ExprPtr> Prims;
    for (const char *Name : {"map", "+", "cons", "car", "cdr", "nil", "1"})
      Prims.push_back(lookupPrimitive(Name));
    return Grammar::uniform(Prims);
  }

  Grammar G;
};

} // namespace

TEST_F(EnumerationTest, WindowEnumeratesUniquePrograms) {
  long Nodes = 1000000;
  std::set<ExprPtr> Seen;
  enumerateWindow(G, Type::arrow(tInt(), tInt()), 0, 7.0, Nodes,
                  [&](ExprPtr P, double) {
                    EXPECT_TRUE(Seen.insert(P).second)
                        << "duplicate program " << P->show();
                    return true;
                  });
  EXPECT_GT(Seen.size(), 5u);
}

TEST_F(EnumerationTest, WindowsPartitionTheSpace) {
  // [0, 8) must equal [0, 4) ∪ [4, 8) exactly.
  auto Collect = [&](double Lo, double Hi) {
    long Nodes = 4000000;
    std::set<ExprPtr> Out;
    enumerateWindow(G, Type::arrow(tInt(), tInt()), Lo, Hi, Nodes,
                    [&](ExprPtr P, double) {
                      Out.insert(P);
                      return true;
                    });
    return Out;
  };
  std::set<ExprPtr> Whole = Collect(0, 8);
  std::set<ExprPtr> Low = Collect(0, 4);
  std::set<ExprPtr> High = Collect(4, 8);
  std::set<ExprPtr> Unioned = Low;
  Unioned.insert(High.begin(), High.end());
  EXPECT_EQ(Whole, Unioned);
  for (ExprPtr P : Low)
    EXPECT_EQ(High.count(P), 0u) << P->show();
}

TEST_F(EnumerationTest, ReportedPriorsMatchGrammarLikelihood) {
  long Nodes = 500000;
  TypePtr Req = Type::arrow(tInt(), tInt());
  int Checked = 0;
  enumerateWindow(G, Req, 0, 6.5, Nodes, [&](ExprPtr P, double LogPrior) {
    EXPECT_NEAR(LogPrior, G.logLikelihood(Req, P), 1e-6) << P->show();
    return ++Checked < 200;
  });
  EXPECT_GT(Checked, 3);
}

TEST_F(EnumerationTest, EnumeratedProgramsAreWellTyped) {
  long Nodes = 500000;
  TypePtr Req = Type::arrow(tList(tInt()), tInt());
  int Checked = 0;
  enumerateWindow(G, Req, 0, 7.0, Nodes, [&](ExprPtr P, double) {
    TypePtr T = P->inferType();
    EXPECT_NE(T, nullptr) << P->show();
    if (T) {
      TypeContext Ctx;
      EXPECT_TRUE(Ctx.unify(Ctx.instantiate(T), Ctx.instantiate(Req)))
          << P->show() << " : " << T->show();
    }
    return ++Checked < 300;
  });
  EXPECT_GT(Checked, 3);
}

TEST_F(EnumerationTest, NodeBudgetIsRespected) {
  long Nodes = 50;
  int Count = 0;
  enumerateWindow(G, Type::arrow(tInt(), tInt()), 0, 20.0, Nodes,
                  [&](ExprPtr, double) {
                    ++Count;
                    return true;
                  });
  EXPECT_LE(Nodes, 0l);
  EXPECT_LT(Count, 100);
}

TEST_F(EnumerationTest, SolvesIdentityTask) {
  TaskPtr T = listTask("identity", [](const std::vector<long> &In) {
    return In;
  });
  EnumerationParams Params;
  Frontier F = solveTask(G, T, Params);
  ASSERT_FALSE(F.empty());
  EXPECT_EQ(T->logLikelihood(F.best()->Program), 0.0);
}

TEST_F(EnumerationTest, SolvesDoubleEachTask) {
  TaskPtr T = listTask("double", [](const std::vector<long> &In) {
    std::vector<long> Out;
    for (long V : In)
      Out.push_back(2 * V);
    return Out;
  });
  Grammar Focused = focusedGrammar();
  EnumerationParams Params;
  Params.MaxBudget = 16;
  Params.NodeBudget = 2000000;
  EnumerationStats Stats;
  Frontier F = solveTask(Focused, T, Params, &Stats);
  ASSERT_FALSE(F.empty()) << "budget reached " << Stats.BudgetReached;
  EXPECT_EQ(T->logLikelihood(F.best()->Program), 0.0)
      << F.best()->Program->show();
}

TEST_F(EnumerationTest, FrontierOrderedByPosterior) {
  TaskPtr T = listTask("identity", [](const std::vector<long> &In) {
    return In;
  });
  EnumerationParams Params;
  Params.ExtraWindowsAfterSolution = 2;
  Frontier F = solveTask(G, T, Params);
  ASSERT_GE(F.entries().size(), 2u);
  for (size_t I = 1; I < F.entries().size(); ++I)
    EXPECT_GE(F.entries()[I - 1].logPosterior(),
              F.entries()[I].logPosterior());
}

TEST_F(EnumerationTest, SharedGrammarSolverGroupsByType) {
  std::vector<TaskPtr> Tasks = {
      listTask("identity", [](const std::vector<long> &In) { return In; }),
      listTask("increment-each",
               [](const std::vector<long> &In) {
                 std::vector<long> Out;
                 for (long V : In)
                   Out.push_back(V + 1);
                 return Out;
               }),
  };
  Grammar Focused = focusedGrammar();
  EnumerationParams Params;
  Params.NodeBudget = 1000000;
  EnumerationStats Stats;
  auto Frontiers = solveTasks(Focused, Tasks, Params, &Stats);
  ASSERT_EQ(Frontiers.size(), 2u);
  EXPECT_FALSE(Frontiers[0].empty());
  EXPECT_FALSE(Frontiers[1].empty());
  EXPECT_EQ(Stats.EffortToSolve.size(), 2u);
}

TEST_F(EnumerationTest, ImpossibleTaskYieldsEmptyFrontier) {
  // Output length exceeds anything expressible cheaply: require outputs
  // unrelated to inputs so exact match fails for every small program.
  std::vector<Example> Ex = {
      {{Value::makeList({Value::makeInt(1)})},
       Value::makeList({Value::makeInt(77), Value::makeInt(-3)})},
      {{Value::makeList({Value::makeInt(2)})},
       Value::makeList({Value::makeInt(12), Value::makeInt(99)})},
  };
  auto T = std::make_shared<Task>(
      "impossible", Type::arrow(tList(tInt()), tList(tInt())), Ex);
  EnumerationParams Params;
  Params.MaxBudget = 7.0;
  Params.NodeBudget = 100000;
  Frontier F = solveTask(G, T, Params);
  EXPECT_TRUE(F.empty());
}

TEST_F(EnumerationTest, BigramGuidanceFindsSolutionFaster) {
  // Boost the productions used by the target; guided search should find the
  // solution with less effort.
  TaskPtr T = listTask("double", [](const std::vector<long> &In) {
    std::vector<long> Out;
    for (long V : In)
      Out.push_back(2 * V);
    return Out;
  });
  Grammar Focused = focusedGrammar();
  EnumerationParams Params;
  Params.MaxBudget = 16;
  Params.NodeBudget = 2000000;

  EnumerationStats Neutral;
  solveTask(Focused, T, Params, &Neutral);

  Grammar Boosted = Focused;
  for (const char *Name : {"map", "+"})
    Boosted.productions()[Boosted.productionIndex(lookupPrimitive(Name))]
        .LogWeight = 2.0;
  EnumerationStats Guided;
  Frontier F = solveTask(Boosted, T, Params, &Guided);
  ASSERT_FALSE(F.empty());
  ASSERT_FALSE(Neutral.EffortToSolve.empty());
  ASSERT_FALSE(Guided.EffortToSolve.empty());
  if (Neutral.EffortToSolve[0] > 0 && Guided.EffortToSolve[0] > 0) {
    EXPECT_LE(Guided.EffortToSolve[0], Neutral.EffortToSolve[0]);
  }
}

namespace {

/// Everything observable about a search result, as a comparable string:
/// frontier programs with scores (in order) plus the full stats block.
std::string searchFingerprint(const std::vector<Frontier> &Fs,
                              const EnumerationStats &Stats) {
  std::string Sig;
  for (const Frontier &F : Fs) {
    Sig += "[";
    for (const FrontierEntry &E : F.entries()) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "|%.12g|%.12g;", E.LogPrior,
                    E.LogLikelihood);
      Sig += E.Program->show() + Buf;
    }
    Sig += "]";
  }
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), " nodes=%ld progs=%ld budget=%.12g",
                Stats.NodesExpanded, Stats.ProgramsEnumerated,
                Stats.BudgetReached);
  Sig += Buf;
  for (long E : Stats.EffortToSolve)
    Sig += " " + std::to_string(E);
  return Sig;
}

} // namespace

TEST_F(EnumerationTest, SolveTasksIdenticalAcrossThreadCounts) {
  // The tentpole determinism guarantee: frontiers AND stats from the
  // parallel wake phase are bit-identical to the serial path at any
  // thread count (list-domain fixture, single shared request type).
  std::vector<TaskPtr> Tasks = {
      listTask("identity", [](const std::vector<long> &In) { return In; }),
      listTask("increment-each",
               [](const std::vector<long> &In) {
                 std::vector<long> Out;
                 for (long V : In)
                   Out.push_back(V + 1);
                 return Out;
               }),
      listTask("double",
               [](const std::vector<long> &In) {
                 std::vector<long> Out;
                 for (long V : In)
                   Out.push_back(2 * V);
                 return Out;
               }),
  };
  Grammar Focused = focusedGrammar();
  EnumerationParams Params;
  Params.MaxBudget = 14;
  Params.NodeBudget = 500000;

  std::string Baseline;
  for (int Threads : {1, 2, 8}) {
    Params.NumThreads = Threads;
    EnumerationStats Stats;
    auto Fs = solveTasks(Focused, Tasks, Params, &Stats);
    ASSERT_EQ(Stats.EffortToSolve.size(), Tasks.size());
    std::string Sig = searchFingerprint(Fs, Stats);
    if (Threads == 1)
      Baseline = Sig;
    else
      EXPECT_EQ(Sig, Baseline) << "NumThreads=" << Threads
                               << " diverged from the serial path";
  }
  EXPECT_FALSE(Baseline.empty());
}

TEST_F(EnumerationTest, SolveTaskIdenticalAcrossThreadCounts) {
  TaskPtr T = listTask("double", [](const std::vector<long> &In) {
    std::vector<long> Out;
    for (long V : In)
      Out.push_back(2 * V);
    return Out;
  });
  Grammar Focused = focusedGrammar();
  EnumerationParams Params;
  Params.MaxBudget = 16;
  Params.NodeBudget = 2000000;
  Params.ExtraWindowsAfterSolution = 1;

  std::string Baseline;
  for (int Threads : {1, 2, 8}) {
    Params.NumThreads = Threads;
    EnumerationStats Stats;
    Frontier F = solveTask(Focused, T, Params, &Stats);
    ASSERT_FALSE(F.empty());
    std::string Sig = searchFingerprint({F}, Stats);
    if (Threads == 1)
      Baseline = Sig;
    else
      EXPECT_EQ(Sig, Baseline) << "NumThreads=" << Threads;
  }
}

TEST_F(EnumerationTest, EffortStaysAlignedWithTaskOrder) {
  // Mixed request types force multiple groups, which the parallel solver
  // may finish in any order; one unsolvable task pins a -1 to a known
  // index. EffortToSolve must line up with the Tasks vector regardless of
  // worker completion order (the aggregation regression this PR fixes).
  std::vector<Example> IntEx;
  for (long V : {1L, 4L, 9L})
    IntEx.push_back({{Value::makeInt(V)}, Value::makeInt(V + 1)});
  auto IncInt = std::make_shared<Task>(
      "inc-int", Type::arrow(tInt(), tInt()), IntEx);

  std::vector<Example> BadEx = {
      {{Value::makeList({Value::makeInt(1)})},
       Value::makeList({Value::makeInt(77), Value::makeInt(-3)})},
      {{Value::makeList({Value::makeInt(2)})},
       Value::makeList({Value::makeInt(12), Value::makeInt(99)})},
  };
  auto Impossible = std::make_shared<Task>(
      "impossible", Type::arrow(tList(tInt()), tList(tInt())), BadEx);

  std::vector<TaskPtr> Tasks = {
      listTask("identity", [](const std::vector<long> &In) { return In; }),
      IncInt,
      Impossible,
  };
  Grammar Focused = focusedGrammar();
  EnumerationParams Params;
  Params.MaxBudget = 10.0;
  Params.NodeBudget = 200000;

  std::vector<long> Baseline;
  for (int Threads : {1, 2, 8}) {
    Params.NumThreads = Threads;
    EnumerationStats Stats;
    auto Fs = solveTasks(Focused, Tasks, Params, &Stats);
    ASSERT_EQ(Fs.size(), 3u);
    ASSERT_EQ(Stats.EffortToSolve.size(), 3u);
    // Alignment: solved tasks report positive effort at their own index,
    // the impossible task reports -1 at index 2.
    EXPECT_FALSE(Fs[0].empty());
    EXPECT_FALSE(Fs[1].empty());
    EXPECT_TRUE(Fs[2].empty());
    EXPECT_GT(Stats.EffortToSolve[0], 0);
    EXPECT_GT(Stats.EffortToSolve[1], 0);
    EXPECT_EQ(Stats.EffortToSolve[2], -1);
    if (Threads == 1)
      Baseline = Stats.EffortToSolve;
    else
      EXPECT_EQ(Stats.EffortToSolve, Baseline) << "NumThreads=" << Threads;
  }
}

//===----------------------------------------------------------------------===//
// Wall-clock deadlines and cooperative cancellation (the dc_serve path)
//===----------------------------------------------------------------------===//

namespace {

/// A task no small program solves (outputs unrelated to inputs), with a
/// node budget big enough that only the deadline/cancellation can end the
/// search quickly.
TaskPtr impossibleTask() {
  std::vector<Example> Ex = {
      {{Value::makeList({Value::makeInt(1)})},
       Value::makeList({Value::makeInt(77), Value::makeInt(-3)})},
      {{Value::makeList({Value::makeInt(2)})},
       Value::makeList({Value::makeInt(12), Value::makeInt(99)})},
  };
  return std::make_shared<Task>(
      "impossible", Type::arrow(tList(tInt()), tList(tInt())), Ex);
}

} // namespace

TEST_F(EnumerationTest, DeadlineExpiredStopsSearch) {
  EnumerationParams Params;
  Params.MaxBudget = 18.0;
  Params.NodeBudget = 200000000; // would run for minutes without a deadline
  Params.WallTimeoutSeconds = 0.05;

  auto Start = std::chrono::steady_clock::now();
  EnumerationStats Stats;
  Frontier F = solveTask(G, impossibleTask(), Params, &Stats);
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  EXPECT_TRUE(F.empty());
  EXPECT_TRUE(Stats.Interrupted);
  // Polling granularity is a few hundred expansions, so the overshoot is
  // milliseconds; 10s is pure CI paranoia.
  EXPECT_LT(Elapsed, 10.0);
  EXPECT_LT(Stats.NodesExpanded, Params.NodeBudget);
}

TEST_F(EnumerationTest, GenerousDeadlineKeepsResultsBitIdentical) {
  // The determinism contract: a deadline that never fires must not change
  // anything — the ShouldStop hook only ever truncates, never reorders.
  TaskPtr T = listTask("double", [](const std::vector<long> &In) {
    std::vector<long> Out;
    for (long V : In)
      Out.push_back(2 * V);
    return Out;
  });
  Grammar Focused = focusedGrammar();
  EnumerationParams Params;
  Params.MaxBudget = 16;
  Params.NodeBudget = 2000000;

  EnumerationStats Plain;
  Frontier FPlain = solveTask(Focused, T, Params, &Plain);
  Params.WallTimeoutSeconds = 3600.0;
  EnumerationStats Timed;
  Frontier FTimed = solveTask(Focused, T, Params, &Timed);

  EXPECT_FALSE(Plain.Interrupted);
  EXPECT_FALSE(Timed.Interrupted);
  EXPECT_EQ(searchFingerprint({FPlain}, Plain),
            searchFingerprint({FTimed}, Timed));
}

TEST_F(EnumerationTest, CancellationTokenStopsSearch) {
  CancellationToken Cancel;
  Cancel.cancel(); // already cancelled: the first poll must end the search

  EnumerationParams Params;
  Params.MaxBudget = 18.0;
  Params.NodeBudget = 200000000;
  Params.Cancel = &Cancel;

  EnumerationStats Stats;
  Frontier F = solveTask(G, impossibleTask(), Params, &Stats);
  EXPECT_TRUE(F.empty());
  EXPECT_TRUE(Stats.Interrupted);
  // The poll interval bounds how far a cancelled search can run.
  EXPECT_LT(Stats.NodesExpanded, 100000);
}

TEST_F(EnumerationTest, SharedGrammarSolverHonorsDeadline) {
  std::vector<TaskPtr> Tasks = {impossibleTask()};
  EnumerationParams Params;
  Params.MaxBudget = 18.0;
  Params.NodeBudget = 200000000;
  Params.WallTimeoutSeconds = 0.05;

  auto Start = std::chrono::steady_clock::now();
  EnumerationStats Stats;
  auto Frontiers = solveTasks(G, Tasks, Params, &Stats);
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  ASSERT_EQ(Frontiers.size(), 1u);
  EXPECT_TRUE(Frontiers[0].empty());
  EXPECT_TRUE(Stats.Interrupted);
  EXPECT_LT(Elapsed, 10.0);
}
