//===- tests/core/EvaluatorTest.cpp - Evaluator unit tests ----------------===//

#include "core/Evaluator.h"
#include "core/Primitives.h"
#include "core/ProgramParser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dc;

namespace {

class EvaluatorTest : public ::testing::Test {
protected:
  void SetUp() override {
    prims::functionalCore();
    prims::arithmeticExtras();
    prims::mcCarthy1959();
    prims::listExtras();
    prims::realArithmetic();
  }

  /// Runs \p Src on integer-list input \p In, expecting list output.
  std::vector<long> runOnList(const std::string &Src,
                              const std::vector<long> &In) {
    ExprPtr P = parseProgram(Src);
    EXPECT_NE(P, nullptr) << Src;
    std::vector<ValuePtr> Elems;
    for (long X : In)
      Elems.push_back(Value::makeInt(X));
    ValuePtr Out = runProgram(P, {Value::makeList(Elems)});
    EXPECT_NE(Out, nullptr) << Src;
    std::vector<long> Result;
    if (Out && Out->isList())
      for (const ValuePtr &V : Out->asList())
        Result.push_back(V->asInt());
    return Result;
  }
};

} // namespace

TEST_F(EvaluatorTest, Arithmetic) {
  ValuePtr V = runProgram(parseProgram("(+ 1 (* 2 3))"), {});
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asInt(), 7);
}

TEST_F(EvaluatorTest, ClosureApplication) {
  ValuePtr V = runProgram(parseProgram("(lambda (+ $0 $0))"),
                          {Value::makeInt(21)});
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asInt(), 42);
}

TEST_F(EvaluatorTest, NestedClosuresCaptureEnvironment) {
  // (lambda (lambda (- $1 $0))) 10 3 = 7
  ExprPtr P = parseProgram("(lambda (lambda (- $1 $0)))");
  ValuePtr V = runProgram(P, {Value::makeInt(10), Value::makeInt(3)});
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asInt(), 7);
}

TEST_F(EvaluatorTest, MapDoublesList) {
  EXPECT_EQ(runOnList("(lambda (map (lambda (+ $0 $0)) $0))", {1, 2, 3}),
            (std::vector<long>{2, 4, 6}));
}

TEST_F(EvaluatorTest, FoldSumsList) {
  ExprPtr P = parseProgram("(lambda (fold (lambda (lambda (+ $1 $0))) 0 $0))");
  ASSERT_NE(P, nullptr);
  std::vector<ValuePtr> In = {Value::makeInt(1), Value::makeInt(2),
                              Value::makeInt(3), Value::makeInt(4)};
  ValuePtr V = runProgram(P, {Value::makeList(In)});
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asInt(), 10);
}

TEST_F(EvaluatorTest, FoldIsRightFold) {
  // fold cons nil == identity on lists only for a right fold.
  EXPECT_EQ(runOnList("(lambda (fold (lambda (lambda (cons $1 $0))) nil $0))",
                      {1, 2, 3}),
            (std::vector<long>{1, 2, 3}));
}

TEST_F(EvaluatorTest, IfIsLazy) {
  // The dead branch (car nil) would fail if evaluated.
  ExprPtr P = parseProgram("(lambda (if (is-nil $0) 0 (car $0)))");
  ASSERT_NE(P, nullptr);
  ValuePtr V = runProgram(P, {Value::makeList({})});
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asInt(), 0);
  V = runProgram(P, {Value::makeList({Value::makeInt(5)})});
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asInt(), 5);
}

TEST_F(EvaluatorTest, CarOfEmptyFails) {
  EXPECT_EQ(runProgram(parseProgram("(car nil)"), {}), nullptr);
}

TEST_F(EvaluatorTest, DivergenceIsCutOffByStepBudget) {
  // (fix (lambda (lambda ($1 $0))) 0) never terminates.
  ExprPtr P = parseProgram("(lambda (fix (lambda (lambda ($1 $0))) $0))");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(runProgram(P, {Value::makeInt(0)}, /*StepBudget=*/5000), nullptr);
}

TEST_F(EvaluatorTest, FixComputesRecursiveLength) {
  // length via the Y combinator, 1959-Lisp style.
  const char *Src = "(lambda (fix (lambda (lambda "
                    "(if (is-nil $0) 0 (+ 1 ($1 (cdr $0)))))) $0))";
  ExprPtr P = parseProgram(Src);
  ASSERT_NE(P, nullptr);
  std::vector<ValuePtr> In = {Value::makeInt(7), Value::makeInt(8),
                              Value::makeInt(9)};
  ValuePtr V = runProgram(P, {Value::makeList(In)});
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asInt(), 3);
}

TEST_F(EvaluatorTest, FixComputesRecursiveMap) {
  // The paper's Fig 2 program: map (+ z z) via the Y combinator.
  const char *Src =
      "(lambda (fix (lambda (lambda (if (is-nil $0) nil "
      "(cons (+ (car $0) (car $0)) ($1 (cdr $0)))))) $0))";
  EXPECT_EQ(runOnList(Src, {1, 2, 3}), (std::vector<long>{2, 4, 6}));
}

TEST_F(EvaluatorTest, PartialApplicationOfBuiltins) {
  // (map (+ 1) xs): + partially applied to one argument.
  EXPECT_EQ(runOnList("(lambda (map (+ 1) $0))", {1, 2, 3}),
            (std::vector<long>{2, 3, 4}));
}

TEST_F(EvaluatorTest, InventionEvaluation) {
  ExprPtr P = parseProgram("(lambda (#(lambda (+ $0 1)) $0))");
  ASSERT_NE(P, nullptr);
  ValuePtr V = runProgram(P, {Value::makeInt(41)});
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asInt(), 42);
}

TEST_F(EvaluatorTest, ModSemantics) {
  ValuePtr V = runProgram(parseProgram("(mod 7 3)"), {});
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->asInt(), 1);
  // Division by zero fails rather than crashing.
  EXPECT_EQ(runProgram(parseProgram("(mod 7 0)"), {}), nullptr);
}

TEST_F(EvaluatorTest, PredicatePrimitives) {
  auto Run = [](const std::string &S) {
    ValuePtr V = runProgram(parseProgram(S), {});
    return V && V->isBool() && V->asBool();
  };
  EXPECT_TRUE(Run("(is-prime (+ 6 1))"));
  EXPECT_FALSE(Run("(is-prime (+ 8 1))"));
  EXPECT_TRUE(Run("(is-square (* 4 4))"));
  EXPECT_FALSE(Run("(is-square (+ 4 4))"));
  EXPECT_TRUE(Run("(> 1 0)"));
  EXPECT_FALSE(Run("(> 0 1)"));
}

TEST_F(EvaluatorTest, ListExtras) {
  EXPECT_EQ(runOnList("(lambda (filter (lambda (> $0 1)) $0))", {0, 1, 2, 3}),
            (std::vector<long>{2, 3}));
  EXPECT_EQ(runOnList("(lambda (append $0 $0))", {1, 2}),
            (std::vector<long>{1, 2, 1, 2}));
  ValuePtr R = runProgram(parseProgram("(range (+ 2 2))"), {});
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->asList().size(), 4u);
}

TEST_F(EvaluatorTest, RealArithmetic) {
  ValuePtr V = runProgram(parseProgram("(*. pi (sqrt. (+. 1. 1.)))"), {});
  ASSERT_NE(V, nullptr);
  EXPECT_NEAR(V->asReal(), 3.14159265 * std::sqrt(2.0), 1e-6);
  // Division by zero yields failure, not inf.
  EXPECT_EQ(runProgram(parseProgram("(/. 1. (-. 1. 1.))"), {}), nullptr);
}

TEST_F(EvaluatorTest, TypeErrorsFailGracefully) {
  // Applying an int as a function.
  EXPECT_EQ(runProgram(parseProgram("(1 1)"), {}), nullptr);
  // car of a non-list.
  ExprPtr P = parseProgram("(lambda (car $0))");
  EXPECT_EQ(runProgram(P, {Value::makeInt(3)}), nullptr);
}

TEST_F(EvaluatorTest, StringValues) {
  ValuePtr S = Value::makeString("hi");
  ASSERT_TRUE(S->isList());
  EXPECT_EQ(S->asList().size(), 2u);
  EXPECT_EQ(Value::toString(S).value(), "hi");
  EXPECT_EQ(S->show(), "\"hi\"");
}
