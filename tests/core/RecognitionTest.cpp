//===- tests/core/RecognitionTest.cpp - Recognition model unit tests ------===//

#include "core/Recognition.h"

#include "core/Enumeration.h"
#include "core/Primitives.h"
#include "core/ProgramParser.h"

#include <gtest/gtest.h>

#include <thread>

using namespace dc;

namespace {

class RecognitionTest : public ::testing::Test {
protected:
  void SetUp() override {
    std::vector<ExprPtr> Prims = prims::functionalCore();
    G = Grammar::uniform(Prims);
  }

  TaskPtr intTask(const std::string &Name,
                  const std::function<long(long)> &F) {
    std::vector<Example> Ex;
    for (long X : {1, 2, 3, 5, 8})
      Ex.push_back({{Value::makeInt(X)}, Value::makeInt(F(X))});
    return std::make_shared<Task>(Name, Type::arrow(tInt(), tInt()), Ex);
  }

  Grammar G;
  IoFeaturizer Featurizer;
};

} // namespace

TEST_F(RecognitionTest, PredictionsAreWellFormedGrammars) {
  RecognitionParams RP;
  RP.TrainingSteps = 50;
  RecognitionModel Model(G, Featurizer, RP);
  TaskPtr T = intTask("inc", [](long X) { return X + 1; });
  ContextualGrammar CG = Model.predict(*T);
  EXPECT_EQ(CG.productions().size(), G.productions().size());
  // All slot weights are clamped.
  for (const Production &P : CG.slot(ParentStart, 0).productions())
    EXPECT_LE(std::fabs(P.LogWeight), RP.LogitClamp + 1e-5);
}

TEST_F(RecognitionTest, TrainingReducesLoss) {
  RecognitionParams RP;
  RP.TrainingSteps = 60;
  RP.Seed = 1;
  RecognitionModel Short(G, Featurizer, RP);
  RP.TrainingSteps = 2000;
  RecognitionModel Long(G, Featurizer, RP);

  std::vector<Fantasy> Pairs;
  TaskPtr T1 = intTask("inc", [](long X) { return X + 1; });
  TaskPtr T2 = intTask("dec", [](long X) { return X - 1; });
  Pairs.push_back({T1, parseProgram("(lambda (+ $0 1))"), -3.0});
  Pairs.push_back({T2, parseProgram("(lambda (- $0 1))"), -3.0});
  Short.trainOnPairs(Pairs);
  Long.trainOnPairs(Pairs);
  EXPECT_LT(Long.lastLoss(), Short.lastLoss());
}

TEST_F(RecognitionTest, GuidanceIsTaskConditioned) {
  // Train on two tasks with different solutions; the predicted grammar
  // must assign the right program more probability under its own task.
  RecognitionParams RP;
  RP.TrainingSteps = 3000;
  RP.Seed = 2;
  RecognitionModel Model(G, Featurizer, RP);
  TaskPtr Inc = intTask("inc", [](long X) { return X + 1; });
  TaskPtr Dbl = intTask("dbl", [](long X) { return X + X; });
  ExprPtr IncProgram = parseProgram("(lambda (+ $0 1))");
  ExprPtr DblProgram = parseProgram("(lambda (+ $0 $0))");
  Model.trainOnPairs({{Inc, IncProgram, -3.0}, {Dbl, DblProgram, -3.0}});

  TypePtr Req = Type::arrow(tInt(), tInt());
  auto ScoreUnder = [&](const Task &T, ExprPtr P) {
    ContextualGrammar Q = Model.predict(T);
    double LL = 0;
    bool Ok = walkProgramDecisions(Q, Req, P,
                                   [&](int, int, const GrammarCandidate &C,
                                       const std::vector<GrammarCandidate> &) {
                                     LL += C.LogProb;
                                   });
    return Ok ? LL : -1e9;
  };
  EXPECT_GT(ScoreUnder(*Inc, IncProgram), ScoreUnder(*Inc, DblProgram));
  EXPECT_GT(ScoreUnder(*Dbl, DblProgram), ScoreUnder(*Dbl, IncProgram));
}

TEST_F(RecognitionTest, GuidedSearchBeatsUniformSearch) {
  RecognitionParams RP;
  RP.TrainingSteps = 3000;
  RP.Seed = 3;
  RecognitionModel Model(G, Featurizer, RP);
  TaskPtr Inc = intTask("inc", [](long X) { return X + 1; });
  Model.trainOnPairs({{Inc, parseProgram("(lambda (+ $0 1))"), -3.0}});

  EnumerationParams Params;
  Params.NodeBudget = 300000;
  EnumerationStats Uniform, Guided;
  solveTask(G, Inc, Params, &Uniform);
  ContextualGrammar Q = Model.predict(*Inc);
  Frontier F = solveTask(Q, Inc, Params, &Guided);
  ASSERT_FALSE(F.empty());
  ASSERT_FALSE(Guided.EffortToSolve.empty());
  if (Uniform.EffortToSolve[0] > 0 && Guided.EffortToSolve[0] > 0)
    EXPECT_LE(Guided.EffortToSolve[0], Uniform.EffortToSolve[0]);
}

TEST_F(RecognitionTest, UnigramModeCollapsesSlots) {
  RecognitionParams RP;
  RP.Bigram = false;
  RP.TrainingSteps = 10;
  RecognitionModel Model(G, Featurizer, RP);
  EXPECT_EQ(Model.slotCount(), 1);
  TaskPtr T = intTask("inc", [](long X) { return X + 1; });
  Grammar U = Model.predictUnigram(*T);
  EXPECT_EQ(U.productions().size(), G.productions().size());
}

TEST_F(RecognitionTest, TrainHandlesEmptyReplays) {
  RecognitionParams RP;
  RP.TrainingSteps = 100;
  RP.FantasyCount = 30;
  RecognitionModel Model(G, Featurizer, RP);
  std::vector<TaskPtr> Seeds = {intTask("seed", [](long X) { return X; })};
  Model.train({}, Seeds); // fantasies only
  SUCCEED();
}

TEST_F(RecognitionTest, ParallelTrainingIsBitIdentical) {
  // The determinism contract: trained weights and lastLoss() are a pure
  // function of the seed, never of NumThreads. Gradients reduce in
  // example order before each Adam step, so 1, 4, and 8 threads must
  // produce bit-for-bit identical nets.
  std::vector<Fantasy> Pairs;
  TaskPtr T1 = intTask("inc", [](long X) { return X + 1; });
  TaskPtr T2 = intTask("dec", [](long X) { return X - 1; });
  TaskPtr T3 = intTask("dbl", [](long X) { return X + X; });
  Pairs.push_back({T1, parseProgram("(lambda (+ $0 1))"), -3.0});
  Pairs.push_back({T2, parseProgram("(lambda (- $0 1))"), -3.0});
  Pairs.push_back({T3, parseProgram("(lambda (+ $0 $0))"), -3.0});

  auto TrainAt = [&](int Threads) {
    RecognitionParams RP;
    RP.TrainingSteps = 400;
    RP.Seed = 17;
    RP.NumThreads = Threads;
    RecognitionModel Model(G, Featurizer, RP);
    Model.trainOnPairs(Pairs);
    return std::make_pair(Model.weightFingerprint(), Model.lastLoss());
  };
  auto [Fp1, Loss1] = TrainAt(1);
  auto [Fp4, Loss4] = TrainAt(4);
  auto [Fp8, Loss8] = TrainAt(8);
  EXPECT_EQ(Fp1, Fp4);
  EXPECT_EQ(Fp1, Fp8);
  EXPECT_EQ(Loss1, Loss4); // exact: same reduction order bit-for-bit
  EXPECT_EQ(Loss1, Loss8);
}

TEST_F(RecognitionTest, ConcurrentPredictReturnsIdenticalGrammars) {
  // predict() is const and reentrant: eight threads sharing one trained
  // model must each get exactly the serial answer. Run under TSan in CI
  // — this is the regression test for the old mutable-Net data race.
  RecognitionParams RP;
  RP.TrainingSteps = 200;
  RP.Seed = 5;
  RecognitionModel Model(G, Featurizer, RP);
  TaskPtr Inc = intTask("inc", [](long X) { return X + 1; });
  Model.trainOnPairs({{Inc, parseProgram("(lambda (+ $0 1))"), -3.0}});

  auto Signature = [&](const ContextualGrammar &CG) {
    std::vector<float> Sig;
    auto AddSlot = [&](const Grammar &Slot) {
      for (const Production &P : Slot.productions())
        Sig.push_back(P.LogWeight);
      Sig.push_back(static_cast<float>(Slot.logVariable()));
    };
    AddSlot(CG.slot(ParentStart, 0));
    for (size_t P = 0; P < CG.productions().size(); ++P)
      AddSlot(CG.slot(static_cast<int>(P), 0));
    return Sig;
  };
  std::vector<float> Serial = Signature(Model.predict(*Inc));

  constexpr int NumThreads = 8;
  std::vector<std::vector<float>> Observed(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int Round = 0; Round < 10; ++Round)
        Observed[T] = Signature(Model.predict(*Inc));
    });
  for (std::thread &T : Threads)
    T.join();
  for (int T = 0; T < NumThreads; ++T)
    EXPECT_EQ(Observed[T], Serial) << "thread " << T << " diverged";
}

TEST_F(RecognitionTest, PredictBatchMatchesPredict) {
  // The predictBatch determinism contract: element k is bit-identical
  // to predict(*Tasks[k]) — one GEMM per layer instead of one matvec
  // per task, but the same per-element accumulation order (DESIGN.md
  // §5). Holds for any batch size (including 1) and any NumThreads the
  // model was trained with.
  std::vector<TaskPtr> Tasks = {
      intTask("inc", [](long X) { return X + 1; }),
      intTask("dec", [](long X) { return X - 1; }),
      intTask("dbl", [](long X) { return X + X; }),
      intTask("sqr", [](long X) { return X * X; }),
      intTask("neg", [](long X) { return -X; }),
      intTask("tri", [](long X) { return 3 * X; }),
      intTask("sub2", [](long X) { return X - 2; }),
      intTask("id", [](long X) { return X; })};
  std::vector<Fantasy> Pairs;
  Pairs.push_back({Tasks[0], parseProgram("(lambda (+ $0 1))"), -3.0});
  Pairs.push_back({Tasks[1], parseProgram("(lambda (- $0 1))"), -3.0});
  Pairs.push_back({Tasks[2], parseProgram("(lambda (+ $0 $0))"), -3.0});

  auto Signature = [&](const ContextualGrammar &CG) {
    std::vector<float> Sig;
    auto AddSlot = [&](const Grammar &Slot) {
      for (const Production &P : Slot.productions())
        Sig.push_back(P.LogWeight);
      Sig.push_back(static_cast<float>(Slot.logVariable()));
    };
    AddSlot(CG.slot(ParentStart, 0));
    for (size_t P = 0; P < CG.productions().size(); ++P)
      AddSlot(CG.slot(static_cast<int>(P), 0));
    return Sig;
  };

  for (int Threads : {1, 4, 8}) {
    RecognitionParams RP;
    RP.TrainingSteps = 200;
    RP.Seed = 5;
    RP.NumThreads = Threads;
    RecognitionModel Model(G, Featurizer, RP);
    Model.trainOnPairs(Pairs);

    std::vector<const Task *> Ptrs;
    for (const TaskPtr &T : Tasks)
      Ptrs.push_back(T.get());
    std::vector<ContextualGrammar> Batch = Model.predictBatch(Ptrs);
    ASSERT_EQ(Batch.size(), Tasks.size());
    for (size_t K = 0; K < Tasks.size(); ++K)
      EXPECT_EQ(Signature(Batch[K]), Signature(Model.predict(*Tasks[K])))
          << "threads " << Threads << " task " << Tasks[K]->name();

    // Batch of one is the degenerate case the serve collector leans on.
    std::vector<const Task *> Lone = {Ptrs.front()};
    std::vector<ContextualGrammar> One = Model.predictBatch(Lone);
    ASSERT_EQ(One.size(), 1u);
    EXPECT_EQ(Signature(One[0]), Signature(Model.predict(*Tasks[0])));
  }
}

TEST_F(RecognitionTest, ConcurrentPredictBatchIsThreadSafe) {
  // predictBatch is const with call-local state only: eight threads
  // batching against one shared model must each see the serial answer.
  // Runs under TSan in CI alongside ConcurrentPredictReturnsIdentical.
  RecognitionParams RP;
  RP.TrainingSteps = 200;
  RP.Seed = 5;
  RecognitionModel Model(G, Featurizer, RP);
  TaskPtr Inc = intTask("inc", [](long X) { return X + 1; });
  TaskPtr Dec = intTask("dec", [](long X) { return X - 1; });
  Model.trainOnPairs({{Inc, parseProgram("(lambda (+ $0 1))"), -3.0}});

  auto Signature = [&](const ContextualGrammar &CG) {
    std::vector<float> Sig;
    for (const Production &P : CG.slot(ParentStart, 0).productions())
      Sig.push_back(P.LogWeight);
    return Sig;
  };
  std::vector<const Task *> Ptrs = {Inc.get(), Dec.get()};
  std::vector<ContextualGrammar> Serial = Model.predictBatch(Ptrs);

  constexpr int NumThreads = 8;
  std::vector<bool> Matched(NumThreads, false);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int Round = 0; Round < 5; ++Round) {
        std::vector<ContextualGrammar> Got = Model.predictBatch(Ptrs);
        Matched[T] = Got.size() == Serial.size() &&
                     Signature(Got[0]) == Signature(Serial[0]) &&
                     Signature(Got[1]) == Signature(Serial[1]);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (int T = 0; T < NumThreads; ++T)
    EXPECT_TRUE(Matched[T]) << "thread " << T << " diverged";
}

TEST_F(RecognitionTest, ExampleGradMatchesFiniteDifference) {
  // Central-difference check of the full pipeline (forward → masked
  // log-softmax over each decision's support → backward) on a tiny
  // bigram net.
  RecognitionParams RP;
  RP.HiddenDim = 8;
  RP.Seed = 23;
  RecognitionModel Model(G, Featurizer, RP);
  TaskPtr T = intTask("inc", [](long X) { return X + 1; });
  ExprPtr Program = parseProgram("(lambda (+ $0 1))");
  std::vector<float> Features = Featurizer.featurize(*T);
  TypePtr Req = T->request();

  nn::Workspace WS;
  nn::Gradients Grad(Model.net());
  double Loss = Model.exampleLossAndGrad(Features, Req, Program, WS, Grad);
  ASSERT_GT(Loss, 0.0) << "program must be in the grammar's support";

  auto Segments = Model.net().parameterSegments();
  auto GradSegments = Grad.segments();
  ASSERT_EQ(Segments.size(), GradSegments.size());
  const float H = 1e-2f;
  int Checked = 0;
  for (size_t S = 0; S < Segments.size(); ++S) {
    // Spot-check a few parameters per segment; a full sweep is O(P²).
    for (size_t I = 0; I < Segments[S].Size;
         I += std::max<size_t>(1, Segments[S].Size / 3)) {
      float P0 = Segments[S].Param[I];
      nn::Workspace ScratchWS;
      nn::Gradients ScratchG(Model.net());
      Segments[S].Param[I] = P0 + H;
      double Up = Model.exampleLossAndGrad(Features, Req, Program,
                                           ScratchWS, ScratchG);
      Segments[S].Param[I] = P0 - H;
      double Down = Model.exampleLossAndGrad(Features, Req, Program,
                                             ScratchWS, ScratchG);
      Segments[S].Param[I] = P0;
      double Numeric = (Up - Down) / (2.0 * H);
      EXPECT_NEAR(GradSegments[S].Grad[I], Numeric, 2e-2)
          << "segment " << S << " param " << I;
      ++Checked;
    }
  }
  EXPECT_GE(Checked, 12);
}

TEST_F(RecognitionTest, GradScaleScalesGradients) {
  RecognitionParams RP;
  RP.HiddenDim = 8;
  RP.Seed = 29;
  RecognitionModel Model(G, Featurizer, RP);
  TaskPtr T = intTask("inc", [](long X) { return X + 1; });
  ExprPtr Program = parseProgram("(lambda (+ $0 1))");
  std::vector<float> Features = Featurizer.featurize(*T);

  nn::Workspace WS;
  nn::Gradients Full(Model.net()), Quarter(Model.net());
  double L1 = Model.exampleLossAndGrad(Features, T->request(), Program, WS,
                                       Full, 1.0f);
  double L2 = Model.exampleLossAndGrad(Features, T->request(), Program, WS,
                                       Quarter, 0.25f);
  EXPECT_DOUBLE_EQ(L1, L2) << "returned loss is unscaled";
  for (size_t I = 0; I < Full.DW3.size(); ++I)
    EXPECT_NEAR(Quarter.DW3.data()[I], 0.25f * Full.DW3.data()[I], 1e-6);
}

TEST_F(RecognitionTest, FeaturizerDistinguishesTaskFamilies) {
  TaskPtr A = intTask("inc", [](long X) { return X + 1; });
  TaskPtr B = intTask("big", [](long X) { return 7 * X + 3; });
  std::vector<float> FA = Featurizer.featurize(*A);
  std::vector<float> FB = Featurizer.featurize(*B);
  ASSERT_EQ(FA.size(), FB.size());
  double Diff = 0;
  for (size_t I = 0; I < FA.size(); ++I)
    Diff += std::fabs(FA[I] - FB[I]);
  EXPECT_GT(Diff, 0.1);
  // Determinism.
  EXPECT_EQ(FA, Featurizer.featurize(*A));
}
