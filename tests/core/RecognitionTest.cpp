//===- tests/core/RecognitionTest.cpp - Recognition model unit tests ------===//

#include "core/Recognition.h"

#include "core/Enumeration.h"
#include "core/Primitives.h"
#include "core/ProgramParser.h"

#include <gtest/gtest.h>

using namespace dc;

namespace {

class RecognitionTest : public ::testing::Test {
protected:
  void SetUp() override {
    std::vector<ExprPtr> Prims = prims::functionalCore();
    G = Grammar::uniform(Prims);
  }

  TaskPtr intTask(const std::string &Name,
                  const std::function<long(long)> &F) {
    std::vector<Example> Ex;
    for (long X : {1, 2, 3, 5, 8})
      Ex.push_back({{Value::makeInt(X)}, Value::makeInt(F(X))});
    return std::make_shared<Task>(Name, Type::arrow(tInt(), tInt()), Ex);
  }

  Grammar G;
  IoFeaturizer Featurizer;
};

} // namespace

TEST_F(RecognitionTest, PredictionsAreWellFormedGrammars) {
  RecognitionParams RP;
  RP.TrainingSteps = 50;
  RecognitionModel Model(G, Featurizer, RP);
  TaskPtr T = intTask("inc", [](long X) { return X + 1; });
  ContextualGrammar CG = Model.predict(*T);
  EXPECT_EQ(CG.productions().size(), G.productions().size());
  // All slot weights are clamped.
  for (const Production &P : CG.slot(ParentStart, 0).productions())
    EXPECT_LE(std::fabs(P.LogWeight), RP.LogitClamp + 1e-5);
}

TEST_F(RecognitionTest, TrainingReducesLoss) {
  RecognitionParams RP;
  RP.TrainingSteps = 60;
  RP.Seed = 1;
  RecognitionModel Short(G, Featurizer, RP);
  RP.TrainingSteps = 2000;
  RecognitionModel Long(G, Featurizer, RP);

  std::vector<Fantasy> Pairs;
  TaskPtr T1 = intTask("inc", [](long X) { return X + 1; });
  TaskPtr T2 = intTask("dec", [](long X) { return X - 1; });
  Pairs.push_back({T1, parseProgram("(lambda (+ $0 1))"), -3.0});
  Pairs.push_back({T2, parseProgram("(lambda (- $0 1))"), -3.0});
  Short.trainOnPairs(Pairs);
  Long.trainOnPairs(Pairs);
  EXPECT_LT(Long.lastLoss(), Short.lastLoss());
}

TEST_F(RecognitionTest, GuidanceIsTaskConditioned) {
  // Train on two tasks with different solutions; the predicted grammar
  // must assign the right program more probability under its own task.
  RecognitionParams RP;
  RP.TrainingSteps = 3000;
  RP.Seed = 2;
  RecognitionModel Model(G, Featurizer, RP);
  TaskPtr Inc = intTask("inc", [](long X) { return X + 1; });
  TaskPtr Dbl = intTask("dbl", [](long X) { return X + X; });
  ExprPtr IncProgram = parseProgram("(lambda (+ $0 1))");
  ExprPtr DblProgram = parseProgram("(lambda (+ $0 $0))");
  Model.trainOnPairs({{Inc, IncProgram, -3.0}, {Dbl, DblProgram, -3.0}});

  TypePtr Req = Type::arrow(tInt(), tInt());
  auto ScoreUnder = [&](const Task &T, ExprPtr P) {
    ContextualGrammar Q = Model.predict(T);
    double LL = 0;
    bool Ok = walkProgramDecisions(Q, Req, P,
                                   [&](int, int, const GrammarCandidate &C,
                                       const std::vector<GrammarCandidate> &) {
                                     LL += C.LogProb;
                                   });
    return Ok ? LL : -1e9;
  };
  EXPECT_GT(ScoreUnder(*Inc, IncProgram), ScoreUnder(*Inc, DblProgram));
  EXPECT_GT(ScoreUnder(*Dbl, DblProgram), ScoreUnder(*Dbl, IncProgram));
}

TEST_F(RecognitionTest, GuidedSearchBeatsUniformSearch) {
  RecognitionParams RP;
  RP.TrainingSteps = 3000;
  RP.Seed = 3;
  RecognitionModel Model(G, Featurizer, RP);
  TaskPtr Inc = intTask("inc", [](long X) { return X + 1; });
  Model.trainOnPairs({{Inc, parseProgram("(lambda (+ $0 1))"), -3.0}});

  EnumerationParams Params;
  Params.NodeBudget = 300000;
  EnumerationStats Uniform, Guided;
  solveTask(G, Inc, Params, &Uniform);
  ContextualGrammar Q = Model.predict(*Inc);
  Frontier F = solveTask(Q, Inc, Params, &Guided);
  ASSERT_FALSE(F.empty());
  ASSERT_FALSE(Guided.EffortToSolve.empty());
  if (Uniform.EffortToSolve[0] > 0 && Guided.EffortToSolve[0] > 0)
    EXPECT_LE(Guided.EffortToSolve[0], Uniform.EffortToSolve[0]);
}

TEST_F(RecognitionTest, UnigramModeCollapsesSlots) {
  RecognitionParams RP;
  RP.Bigram = false;
  RP.TrainingSteps = 10;
  RecognitionModel Model(G, Featurizer, RP);
  EXPECT_EQ(Model.slotCount(), 1);
  TaskPtr T = intTask("inc", [](long X) { return X + 1; });
  Grammar U = Model.predictUnigram(*T);
  EXPECT_EQ(U.productions().size(), G.productions().size());
}

TEST_F(RecognitionTest, TrainHandlesEmptyReplays) {
  RecognitionParams RP;
  RP.TrainingSteps = 100;
  RP.FantasyCount = 30;
  RecognitionModel Model(G, Featurizer, RP);
  std::vector<TaskPtr> Seeds = {intTask("seed", [](long X) { return X; })};
  Model.train({}, Seeds); // fantasies only
  SUCCEED();
}

TEST_F(RecognitionTest, FeaturizerDistinguishesTaskFamilies) {
  TaskPtr A = intTask("inc", [](long X) { return X + 1; });
  TaskPtr B = intTask("big", [](long X) { return 7 * X + 3; });
  std::vector<float> FA = Featurizer.featurize(*A);
  std::vector<float> FB = Featurizer.featurize(*B);
  ASSERT_EQ(FA.size(), FB.size());
  double Diff = 0;
  for (size_t I = 0; I < FA.size(); ++I)
    Diff += std::fabs(FA[I] - FB[I]);
  EXPECT_GT(Diff, 0.1);
  // Determinism.
  EXPECT_EQ(FA, Featurizer.featurize(*A));
}
