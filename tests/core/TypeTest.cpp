//===- tests/core/TypeTest.cpp - Type system unit tests -------------------===//

#include "core/Type.h"

#include <gtest/gtest.h>

using namespace dc;

TEST(Type, ShowGroundTypes) {
  EXPECT_EQ(tInt()->show(), "int");
  EXPECT_EQ(tList(tInt())->show(), "list(int)");
  EXPECT_EQ(tString()->show(), "list(char)");
  EXPECT_EQ(t0()->show(), "t0");
}

TEST(Type, ShowArrows) {
  TypePtr T = Type::arrow(tInt(), tBool());
  EXPECT_EQ(T->show(), "int -> bool");
  TypePtr Curried = Type::arrows({tInt(), tInt()}, tBool());
  EXPECT_EQ(Curried->show(), "int -> int -> bool");
  TypePtr HigherOrder = Type::arrow(Type::arrow(tInt(), tBool()), tInt());
  EXPECT_EQ(HigherOrder->show(), "(int -> bool) -> int");
}

TEST(Type, ArrowAccessors) {
  TypePtr T = Type::arrows({tInt(), tBool()}, tChar());
  EXPECT_TRUE(T->isArrow());
  EXPECT_EQ(functionArity(T), 2);
  EXPECT_EQ(functionReturn(T)->show(), "char");
  auto Args = functionArguments(T);
  ASSERT_EQ(Args.size(), 2u);
  EXPECT_EQ(Args[0]->show(), "int");
  EXPECT_EQ(Args[1]->show(), "bool");
}

TEST(Type, NonArrowHasArityZero) {
  EXPECT_EQ(functionArity(tInt()), 0);
  EXPECT_TRUE(functionArguments(tInt()).empty());
  EXPECT_EQ(functionReturn(tInt())->show(), "int");
}

TEST(Type, Monomorphism) {
  EXPECT_TRUE(tInt()->isMonomorphic());
  EXPECT_TRUE(tList(tInt())->isMonomorphic());
  EXPECT_FALSE(t0()->isMonomorphic());
  EXPECT_FALSE(tList(t0())->isMonomorphic());
}

TEST(Type, StructuralEquality) {
  EXPECT_TRUE(tList(tInt())->equals(*tList(tInt())));
  EXPECT_FALSE(tList(tInt())->equals(*tList(tBool())));
  EXPECT_TRUE(t0()->equals(*Type::variable(0)));
  EXPECT_FALSE(t0()->equals(*t1()));
}

TEST(TypeContext, FreshVariablesAreDistinct) {
  TypeContext Ctx;
  TypePtr A = Ctx.makeVariable();
  TypePtr B = Ctx.makeVariable();
  EXPECT_NE(A->variableId(), B->variableId());
}

TEST(TypeContext, UnifyVariableWithGround) {
  TypeContext Ctx;
  TypePtr V = Ctx.makeVariable();
  EXPECT_TRUE(Ctx.unify(V, tInt()));
  EXPECT_EQ(Ctx.apply(V)->show(), "int");
}

TEST(TypeContext, UnifyCongruence) {
  TypeContext Ctx;
  TypePtr V = Ctx.makeVariable();
  EXPECT_TRUE(Ctx.unify(tList(V), tList(tBool())));
  EXPECT_EQ(Ctx.apply(V)->show(), "bool");
}

TEST(TypeContext, UnifyFailsOnMismatch) {
  TypeContext Ctx;
  EXPECT_FALSE(Ctx.unify(tInt(), tBool()));
  EXPECT_FALSE(Ctx.unify(tList(tInt()), tInt()));
}

TEST(TypeContext, OccursCheck) {
  TypeContext Ctx;
  TypePtr V = Ctx.makeVariable();
  EXPECT_FALSE(Ctx.unify(V, tList(V)));
}

TEST(TypeContext, UnifyThroughChains) {
  TypeContext Ctx;
  TypePtr A = Ctx.makeVariable();
  TypePtr B = Ctx.makeVariable();
  EXPECT_TRUE(Ctx.unify(A, B));
  EXPECT_TRUE(Ctx.unify(B, tChar()));
  EXPECT_EQ(Ctx.apply(A)->show(), "char");
}

TEST(TypeContext, InstantiateRenamesConsistently) {
  TypeContext Ctx;
  // t0 -> t0 -> t1 must rename t0 to one fresh variable used twice.
  TypePtr Poly = Type::arrows({t0(), t0()}, t1());
  TypePtr Inst = Ctx.instantiate(Poly);
  auto Args = functionArguments(Inst);
  ASSERT_EQ(Args.size(), 2u);
  EXPECT_TRUE(Args[0]->equals(*Args[1]));
  EXPECT_FALSE(Args[0]->equals(*functionReturn(Inst)));
}

TEST(TypeContext, UnifyArrowDecomposition) {
  TypeContext Ctx;
  TypePtr A = Ctx.makeVariable();
  TypePtr B = Ctx.makeVariable();
  TypePtr Fn = Type::arrow(A, B);
  EXPECT_TRUE(Ctx.unify(Fn, Type::arrow(tInt(), tList(tInt()))));
  EXPECT_EQ(Ctx.apply(A)->show(), "int");
  EXPECT_EQ(Ctx.apply(B)->show(), "list(int)");
}

TEST(Type, Canonicalize) {
  TypePtr Messy = Type::arrows({Type::variable(7), Type::variable(3)},
                               Type::variable(7));
  TypePtr Canon = canonicalize(Messy);
  EXPECT_EQ(Canon->show(), "t0 -> t1 -> t0");
}

TEST(Type, CollectVariables) {
  TypePtr T = Type::arrows({t1(), t0()}, t1());
  std::vector<int> Vars;
  T->collectVariables(Vars);
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_EQ(Vars[0], 1);
  EXPECT_EQ(Vars[1], 0);
}
