//===- tests/core/PropertyTest.cpp - Parameterized property sweeps --------===//
//
// Randomized/parameterized invariants tying the subsystems together:
//
//  * sampling/likelihood duality: every grammar sample scores finitely,
//    and eta-equivalent programs score identically;
//  * enumeration/likelihood duality: reported priors equal recomputed
//    likelihoods, across grammars with skewed weights;
//  * version-space consistency (paper Theorem G.5) across a program sweep:
//    every sampled refactoring β-reduces back to the original;
//  * refactor-closure completeness spot checks (Theorem G.6 flavor):
//    hand-built redexes that β-reduce to a program appear in its closure.
//
//===----------------------------------------------------------------------===//

#include "core/Enumeration.h"
#include "core/Primitives.h"
#include "core/ProgramParser.h"
#include "vs/VersionSpace.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dc;

namespace {

Grammar testGrammar(int WeightSeed) {
  std::vector<ExprPtr> Core = prims::functionalCore();
  Grammar G = Grammar::uniform(Core);
  if (WeightSeed == 0)
    return G;
  // Deterministically skewed weights: stress the normalizers.
  std::mt19937 Rng(WeightSeed);
  std::uniform_real_distribution<double> W(-2.0, 2.0);
  for (Production &P : G.productions())
    P.LogWeight = W(Rng);
  G.setLogVariable(W(Rng));
  return G;
}

} // namespace

//===----------------------------------------------------------------------===//
// Sampling / likelihood duality
//===----------------------------------------------------------------------===//

class SamplingProperty : public ::testing::TestWithParam<int> {};

TEST_P(SamplingProperty, SamplesScoreFinitelyUnderTheirGrammar) {
  Grammar G = testGrammar(GetParam());
  std::mt19937 Rng(100 + GetParam());
  TypePtr Requests[] = {
      Type::arrow(tInt(), tInt()),
      Type::arrow(tList(tInt()), tList(tInt())),
      Type::arrow(tList(tInt()), tInt()),
      Type::arrow(tList(tInt()), tBool()),
  };
  // Strongly skewed weights make deep samples hit the depth bound more
  // often, so the yield varies; the invariant under test is that every
  // sample that *does* complete scores finitely.
  int Checked = 0;
  for (const TypePtr &Req : Requests)
    for (int I = 0; I < 60; ++I) {
      ExprPtr P = G.sample(Req, Rng);
      if (!P)
        continue;
      double LL = G.logLikelihood(Req, P);
      EXPECT_TRUE(std::isfinite(LL)) << P->show();
      EXPECT_LE(LL, 1e-9) << "log probabilities cannot be positive: "
                          << P->show();
      ++Checked;
    }
  EXPECT_GT(Checked, 20);
}

INSTANTIATE_TEST_SUITE_P(WeightSeeds, SamplingProperty,
                         ::testing::Values(0, 1, 2, 3, 7));

//===----------------------------------------------------------------------===//
// Enumeration / likelihood duality
//===----------------------------------------------------------------------===//

class EnumerationProperty : public ::testing::TestWithParam<int> {};

TEST_P(EnumerationProperty, ReportedPriorsMatchRecomputedLikelihood) {
  Grammar G = testGrammar(GetParam());
  TypePtr Req = Type::arrow(tInt(), tInt());
  long Nodes = 300000;
  int Checked = 0;
  enumerateWindow(G, Req, 0, 6.0, Nodes, [&](ExprPtr P, double LogPrior) {
    EXPECT_NEAR(LogPrior, G.logLikelihood(Req, P), 1e-6) << P->show();
    return ++Checked < 150;
  });
  EXPECT_GT(Checked, 2);
}

TEST_P(EnumerationProperty, EnumerationIsDeterministic) {
  Grammar G = testGrammar(GetParam());
  TypePtr Req = Type::arrow(tList(tInt()), tInt());
  auto Collect = [&] {
    long Nodes = 200000;
    std::vector<ExprPtr> Out;
    enumerateWindow(G, Req, 0, 6.0, Nodes, [&](ExprPtr P, double) {
      Out.push_back(P);
      return Out.size() < 200;
    });
    return Out;
  };
  EXPECT_EQ(Collect(), Collect());
}

INSTANTIATE_TEST_SUITE_P(WeightSeeds, EnumerationProperty,
                         ::testing::Values(0, 1, 5));

//===----------------------------------------------------------------------===//
// Version-space consistency across a program sweep (Theorem G.5)
//===----------------------------------------------------------------------===//

class RefactoringProperty : public ::testing::TestWithParam<const char *> {
protected:
  void SetUp() override {
    prims::functionalCore();
    prims::arithmeticExtras();
    prims::mcCarthy1959();
  }
};

TEST_P(RefactoringProperty, ClosureMembersReduceToOriginal) {
  ExprPtr P = parseProgram(GetParam());
  ASSERT_NE(P, nullptr) << GetParam();
  VersionTable VT;
  VsId Closure = VT.betaClosure(P, 2);
  int Checked = 0;
  for (ExprPtr R : VT.extensionSample(Closure, 60)) {
    EXPECT_EQ(R->betaNormalForm(512), P)
        << R->show() << " is not a refactoring of " << GetParam();
    ++Checked;
  }
  EXPECT_GT(Checked, 0);
}

TEST_P(RefactoringProperty, ExtractionRecoversAMinimalMember) {
  ExprPtr P = parseProgram(GetParam());
  ASSERT_NE(P, nullptr);
  VersionTable VT;
  VsId Closure = VT.betaClosure(P, 2);
  ExprPtr Cheapest = VT.extractCheapest(Closure);
  ASSERT_NE(Cheapest, nullptr);
  // The original is in its own closure, so the minimum is at most it.
  EXPECT_LE(Cheapest->size(), P->size());
  EXPECT_EQ(Cheapest->betaNormalForm(512), P);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RefactoringProperty,
    ::testing::Values(
        "(+ 5 5)", "(* (+ 1 1) (+ 5 5))", "(lambda (+ $0 $0))",
        "(lambda (map (lambda (+ $0 1)) $0))",
        "(lambda (cons (car $0) nil))",
        "(lambda (fold (lambda (lambda (+ $1 $0))) 0 $0))",
        "(lambda (if (is-nil $0) 0 (car $0)))"));

//===----------------------------------------------------------------------===//
// Completeness spot checks (Theorem G.6 flavor)
//===----------------------------------------------------------------------===//

TEST(RefactoringCompleteness, HandBuiltRedexesAppearInTheClosure) {
  prims::functionalCore();
  prims::arithmeticExtras();
  struct Case {
    const char *Original;
    const char *Refactoring; // must β-reduce to Original
  };
  const Case Cases[] = {
      {"(+ 5 5)", "((lambda (+ $0 $0)) 5)"},
      {"(+ 5 5)", "((lambda (+ $0 5)) 5)"},
      {"(+ 5 5)", "((lambda (+ 5 $0)) 5)"},
      {"(* 4 (+ 4 1))", "((lambda (* $0 (+ $0 1))) 4)"},
      {"(lambda (+ $0 1))", "(lambda ((lambda (+ $0 1)) $0))"},
      {"(lambda (cons (car $0) nil))",
       "(lambda ((lambda (cons $0 nil)) (car $0)))"},
  };
  for (const Case &C : Cases) {
    ExprPtr P = parseProgram(C.Original);
    ExprPtr R = parseProgram(C.Refactoring);
    ASSERT_NE(P, nullptr) << C.Original;
    ASSERT_NE(R, nullptr) << C.Refactoring;
    ASSERT_EQ(R->betaNormalForm(128), P)
        << "test case is wrong: " << C.Refactoring;
    VersionTable VT;
    VsId Closure = VT.betaClosure(P, 2);
    EXPECT_TRUE(VT.extensionContains(Closure, R))
        << C.Refactoring << " missing from the closure of " << C.Original;
  }
}

TEST(RefactoringCompleteness, TwoIndependentSubtreeRewritesCompose) {
  // The paper's equivalence-aggregation claim: Iβ(ρ) contains members
  // where *both* subtrees were refactored, even at n=1.
  prims::functionalCore();
  prims::arithmeticExtras();
  ExprPtr P = parseProgram("(* (+ 1 1) (+ 5 5))");
  ExprPtr Both = parseProgram(
      "(* ((lambda (+ $0 $0)) 1) ((lambda (+ $0 $0)) 5))");
  VersionTable VT;
  EXPECT_TRUE(VT.extensionContains(VT.betaClosure(P, 1), Both));
}
