//===- tests/nn/NnTest.cpp - Neural network substrate unit tests ----------===//

#include "nn/Layers.h"
#include "nn/Optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dc::nn;

TEST(Matrix, MatvecBasics) {
  Matrix M(2, 3);
  M.at(0, 0) = 1;
  M.at(0, 1) = 2;
  M.at(0, 2) = 3;
  M.at(1, 0) = -1;
  M.at(1, 1) = 0;
  M.at(1, 2) = 1;
  std::vector<float> Y = M.matvec({1, 1, 1});
  ASSERT_EQ(Y.size(), 2u);
  EXPECT_FLOAT_EQ(Y[0], 6);
  EXPECT_FLOAT_EQ(Y[1], 0);
  std::vector<float> Z = M.matvecTransposed({1, 2});
  ASSERT_EQ(Z.size(), 3u);
  EXPECT_FLOAT_EQ(Z[0], -1);
  EXPECT_FLOAT_EQ(Z[1], 2);
  EXPECT_FLOAT_EQ(Z[2], 5);
}

TEST(Matrix, AddOuter) {
  Matrix M(2, 2);
  M.addOuter({1, 2}, {3, 4}, 0.5f);
  EXPECT_FLOAT_EQ(M.at(0, 0), 1.5);
  EXPECT_FLOAT_EQ(M.at(1, 1), 4.0);
}

TEST(Matrix, GlorotInitializationBounded) {
  std::mt19937 Rng(1);
  Matrix M = Matrix::glorot(16, 16, Rng);
  float Bound = std::sqrt(6.0f / 32.0f);
  for (size_t I = 0; I < M.size(); ++I) {
    EXPECT_LE(std::fabs(M.data()[I]), Bound + 1e-6);
  }
}

TEST(MaskedLogSoftmax, NormalizesOverActiveSet) {
  std::vector<float> Logits = {1.0f, 2.0f, 3.0f, 100.0f};
  std::vector<int> Active = {0, 1, 2};
  std::vector<float> Out = maskedLogSoftmax(Logits, Active);
  double Total = 0;
  for (int I : Active)
    Total += std::exp(Out[I]);
  EXPECT_NEAR(Total, 1.0, 1e-5);
  EXPECT_FLOAT_EQ(Out[3], 100.0f) << "masked entries stay untouched";
  EXPECT_GT(Out[2], Out[1]);
}

TEST(Linear, GradientMatchesFiniteDifference) {
  std::mt19937 Rng(3);
  Linear L(4, 3, Rng);
  std::vector<float> X = {0.5f, -1.0f, 2.0f, 0.1f};
  // Loss = sum of outputs; dL/dy = ones.
  auto Loss = [&] {
    std::vector<float> Y = L.forward(X);
    float S = 0;
    for (float V : Y)
      S += V;
    return S;
  };
  Loss();
  L.zeroGrad();
  L.backward({1, 1, 1});
  const float H = 1e-3f;
  float W0 = L.W.at(1, 2);
  float Before = Loss();
  L.W.at(1, 2) = W0 + H;
  float After = Loss();
  L.W.at(1, 2) = W0;
  float Numeric = (After - Before) / H;
  EXPECT_NEAR(L.DW.at(1, 2), Numeric, 1e-2);
}

TEST(Mlp, GradientMatchesFiniteDifference) {
  std::mt19937 Rng(5);
  Mlp Net(3, 8, 2, Rng);
  std::vector<float> X = {0.2f, -0.7f, 1.1f};
  auto Loss = [&] {
    std::vector<float> Y = Net.forward(X);
    return Y[0] * Y[0] + 0.5f * Y[1];
  };
  std::vector<float> Y = Net.forward(X);
  Net.zeroGrad();
  Net.backward({2 * Y[0], 0.5f});

  float P0 = Net.L1.W.at(2, 1);
  const float H = 1e-3f;
  float Before = Loss();
  Net.L1.W.at(2, 1) = P0 + H;
  float After = Loss();
  Net.L1.W.at(2, 1) = P0;
  float Numeric = (After - Before) / H;
  EXPECT_NEAR(Net.L1.DW.at(2, 1), Numeric, 5e-2);
}

TEST(Adam, LearnsALinearMap) {
  std::mt19937 Rng(9);
  Mlp Net(2, 16, 1, Rng);
  Adam Opt(Net, 1e-2f);
  // Target: y = 2a - b.
  std::uniform_real_distribution<float> U(-1, 1);
  double FinalLoss = 0;
  for (int Step = 0; Step < 3000; ++Step) {
    float A = U(Rng), B = U(Rng);
    float Target = 2 * A - B;
    std::vector<float> Y = Net.forward({A, B});
    float Err = Y[0] - Target;
    Net.backward({2 * Err});
    Opt.step();
    FinalLoss = Err * Err;
  }
  EXPECT_LT(FinalLoss, 0.05);
}

TEST(Mlp, ParameterSegmentsCoverEverything) {
  std::mt19937 Rng(2);
  Mlp Net(4, 8, 3, Rng);
  size_t Total = 0;
  for (const auto &Seg : Net.parameterSegments())
    Total += Seg.Size;
  EXPECT_EQ(Total, Net.parameterCount());
  EXPECT_EQ(Total, 4u * 8 + 8 + 8u * 8 + 8 + 8u * 3 + 3);
}
