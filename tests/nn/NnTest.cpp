//===- tests/nn/NnTest.cpp - Neural network substrate unit tests ----------===//

#include "nn/Layers.h"
#include "nn/Optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dc::nn;

TEST(Matrix, MatvecBasics) {
  Matrix M(2, 3);
  M.at(0, 0) = 1;
  M.at(0, 1) = 2;
  M.at(0, 2) = 3;
  M.at(1, 0) = -1;
  M.at(1, 1) = 0;
  M.at(1, 2) = 1;
  std::vector<float> Y = M.matvec({1, 1, 1});
  ASSERT_EQ(Y.size(), 2u);
  EXPECT_FLOAT_EQ(Y[0], 6);
  EXPECT_FLOAT_EQ(Y[1], 0);
  std::vector<float> Z = M.matvecTransposed({1, 2});
  ASSERT_EQ(Z.size(), 3u);
  EXPECT_FLOAT_EQ(Z[0], -1);
  EXPECT_FLOAT_EQ(Z[1], 2);
  EXPECT_FLOAT_EQ(Z[2], 5);
}

TEST(Matrix, MatvecIntoReusesBuffer) {
  Matrix M(2, 3);
  M.at(0, 0) = 1;
  M.at(1, 2) = 4;
  std::vector<float> Y = {9, 9, 9, 9, 9}; // wrong size, stale contents
  M.matvecInto({1, 1, 1}, Y);
  ASSERT_EQ(Y.size(), 2u);
  EXPECT_FLOAT_EQ(Y[0], 1);
  EXPECT_FLOAT_EQ(Y[1], 4);
  std::vector<float> Z = {7}; // too small, must grow and zero
  M.matvecTransposedInto({1, 2}, Z);
  ASSERT_EQ(Z.size(), 3u);
  EXPECT_FLOAT_EQ(Z[0], 1);
  EXPECT_FLOAT_EQ(Z[1], 0);
  EXPECT_FLOAT_EQ(Z[2], 8);
}

TEST(Matrix, AddOuter) {
  Matrix M(2, 2);
  M.addOuter({1, 2}, {3, 4}, 0.5f);
  EXPECT_FLOAT_EQ(M.at(0, 0), 1.5);
  EXPECT_FLOAT_EQ(M.at(1, 1), 4.0);
}

TEST(Matrix, MatmulMatchesMatvecBitwise) {
  // The GEMM determinism contract (DESIGN.md §5): every output row of
  // matmulInto is bit-for-bit the matvec of the corresponding input
  // row — same per-element accumulation order, so batch size never
  // changes a result. Exercise odd shapes that straddle tile edges.
  std::mt19937 Rng(21);
  for (auto [R, C, B] : {std::tuple{5, 7, 3}, {8, 4, 9}, {3, 3, 1},
                         {16, 13, 6}, {1, 9, 5}}) {
    Matrix W = Matrix::glorot(R, C, Rng);
    Matrix X(B, C);
    std::uniform_real_distribution<float> U(-2, 2);
    for (size_t I = 0; I < X.size(); ++I)
      X.data()[I] = U(Rng);
    Matrix Y = W.matmul(X);
    ASSERT_EQ(Y.rows(), B);
    ASSERT_EQ(Y.cols(), R);
    for (int Bi = 0; Bi < B; ++Bi) {
      std::vector<float> Row(X.data() + static_cast<size_t>(Bi) * C,
                             X.data() + static_cast<size_t>(Bi + 1) * C);
      std::vector<float> Ref = W.matvec(Row);
      for (int I = 0; I < R; ++I)
        EXPECT_EQ(Y.at(Bi, I), Ref[I])
            << R << "x" << C << " batch " << B << " row " << Bi;
    }
  }
}

TEST(Matrix, MatmulTransposedMatchesMatvecTransposedBitwise) {
  std::mt19937 Rng(22);
  for (auto [R, C, B] : {std::tuple{5, 7, 3}, {8, 4, 9}, {16, 13, 1}}) {
    Matrix W = Matrix::glorot(R, C, Rng);
    Matrix X(B, R);
    std::uniform_real_distribution<float> U(-2, 2);
    for (size_t I = 0; I < X.size(); ++I)
      X.data()[I] = U(Rng);
    Matrix Y;
    W.matmulTransposedInto(X, Y);
    ASSERT_EQ(Y.rows(), B);
    ASSERT_EQ(Y.cols(), C);
    for (int Bi = 0; Bi < B; ++Bi) {
      std::vector<float> Row(X.data() + static_cast<size_t>(Bi) * R,
                             X.data() + static_cast<size_t>(Bi + 1) * R);
      std::vector<float> Ref = W.matvecTransposed(Row);
      for (int J = 0; J < C; ++J)
        EXPECT_EQ(Y.at(Bi, J), Ref[J]) << "row " << Bi << " col " << J;
    }
  }
}

TEST(Matrix, AddOuterBatchMatchesSequentialAddOuter) {
  // Batched gradient accumulation must be the same += sequence as one
  // addOuter per example in batch order — bit-identical, not just close.
  std::mt19937 Rng(23);
  std::uniform_real_distribution<float> U(-1, 1);
  const int R = 6, C = 5, B = 4;
  Matrix A(B, R), X(B, C);
  for (size_t I = 0; I < A.size(); ++I)
    A.data()[I] = U(Rng);
  for (size_t I = 0; I < X.size(); ++I)
    X.data()[I] = U(Rng);
  Matrix Batched(R, C), Sequential(R, C);
  Batched.addOuterBatch(A, X, 0.25f);
  for (int Bi = 0; Bi < B; ++Bi) {
    std::vector<float> ARow(A.data() + static_cast<size_t>(Bi) * R,
                            A.data() + static_cast<size_t>(Bi + 1) * R);
    std::vector<float> XRow(X.data() + static_cast<size_t>(Bi) * C,
                            X.data() + static_cast<size_t>(Bi + 1) * C);
    Sequential.addOuter(ARow, XRow, 0.25f);
  }
  for (size_t I = 0; I < Batched.size(); ++I)
    EXPECT_EQ(Batched.data()[I], Sequential.data()[I]) << "element " << I;
}

TEST(Matrix, AddColumnSumsAccumulateInRowOrder) {
  Matrix M(3, 2);
  M.at(0, 0) = 1.0f;
  M.at(1, 0) = 2.0f;
  M.at(2, 0) = 4.0f;
  M.at(0, 1) = -1.0f;
  M.at(2, 1) = 0.5f;
  std::vector<float> Y = {10.0f, 20.0f}; // accumulates, never clears
  M.addColumnSumsTo(Y);
  EXPECT_EQ(Y[0], ((10.0f + 1.0f) + 2.0f) + 4.0f);
  EXPECT_EQ(Y[1], ((20.0f + -1.0f) + 0.0f) + 0.5f);
}

TEST(Matrix, GlorotInitializationBounded) {
  std::mt19937 Rng(1);
  Matrix M = Matrix::glorot(16, 16, Rng);
  float Bound = std::sqrt(6.0f / 32.0f);
  for (size_t I = 0; I < M.size(); ++I) {
    EXPECT_LE(std::fabs(M.data()[I]), Bound + 1e-6);
  }
}

TEST(MaskedLogSoftmax, NormalizesOverActiveSet) {
  std::vector<float> Logits = {1.0f, 2.0f, 3.0f, 100.0f};
  std::vector<int> Active = {0, 1, 2};
  std::vector<float> Out = maskedLogSoftmax(Logits, Active);
  double Total = 0;
  for (int I : Active)
    Total += std::exp(Out[I]);
  EXPECT_NEAR(Total, 1.0, 1e-5);
  EXPECT_FLOAT_EQ(Out[3], 100.0f) << "masked entries stay untouched";
  EXPECT_GT(Out[2], Out[1]);
}

TEST(Linear, GradientMatchesFiniteDifference) {
  std::mt19937 Rng(3);
  Linear L(4, 3, Rng);
  std::vector<float> X = {0.5f, -1.0f, 2.0f, 0.1f};
  // Loss = sum of outputs; dL/dy = ones.
  auto Loss = [&] {
    std::vector<float> Y;
    L.forward(X, Y);
    float S = 0;
    for (float V : Y)
      S += V;
    return S;
  };
  Matrix DW(3, 4);
  std::vector<float> DB(3, 0.0f), DX;
  L.backward({1, 1, 1}, X, DW, DB, DX);
  const float H = 1e-3f;
  float W0 = L.W.at(1, 2);
  float Before = Loss();
  L.W.at(1, 2) = W0 + H;
  float After = Loss();
  L.W.at(1, 2) = W0;
  float Numeric = (After - Before) / H;
  EXPECT_NEAR(DW.at(1, 2), Numeric, 1e-2);
  EXPECT_FLOAT_EQ(DB[1], 1.0f);
  ASSERT_EQ(DX.size(), X.size());
}

TEST(Mlp, GradientMatchesFiniteDifference) {
  std::mt19937 Rng(5);
  Mlp Net(3, 8, 2, Rng);
  std::vector<float> X = {0.2f, -0.7f, 1.1f};
  Workspace WS;
  auto Loss = [&] {
    const std::vector<float> &Y = Net.forward(X, WS);
    return Y[0] * Y[0] + 0.5f * Y[1];
  };
  const std::vector<float> &Y = Net.forward(X, WS);
  Gradients G(Net);
  Net.backward({2 * Y[0], 0.5f}, WS, G);

  float P0 = Net.L1.W.at(2, 1);
  const float H = 1e-3f;
  float Before = Loss();
  Net.L1.W.at(2, 1) = P0 + H;
  float After = Loss();
  Net.L1.W.at(2, 1) = P0;
  float Numeric = (After - Before) / H;
  EXPECT_NEAR(G.DW1.at(2, 1), Numeric, 5e-2);
}

TEST(Mlp, WorkspaceReuseAcrossShapes) {
  // One workspace driven through two differently-shaped nets: every
  // buffer must be fully overwritten per call, so the small-net pass
  // after the large-net pass sees no stale activations.
  std::mt19937 Rng(11);
  Mlp Big(6, 16, 4, Rng);
  Mlp Small(2, 4, 3, Rng);
  Workspace Shared, Fresh;
  std::vector<float> BigX = {1, -1, 0.5f, 2, -0.25f, 0.75f};
  std::vector<float> SmallX = {0.3f, -0.9f};

  Big.forward(BigX, Shared); // pollute with the larger shapes
  Gradients GBig(Big);
  Big.backward({1, 1, 1, 1}, Shared, GBig);

  const std::vector<float> &Reused = Small.forward(SmallX, Shared);
  const std::vector<float> &Clean = Small.forward(SmallX, Fresh);
  ASSERT_EQ(Reused.size(), Clean.size());
  for (size_t I = 0; I < Reused.size(); ++I)
    EXPECT_FLOAT_EQ(Reused[I], Clean[I]) << "stale activation at " << I;

  Gradients GReused(Small), GFresh(Small);
  Small.backward({1, -2, 0.5f}, Shared, GReused);
  Small.backward({1, -2, 0.5f}, Fresh, GFresh);
  ASSERT_EQ(GReused.DW1.size(), GFresh.DW1.size());
  for (size_t I = 0; I < GFresh.DW1.size(); ++I)
    EXPECT_FLOAT_EQ(GReused.DW1.data()[I], GFresh.DW1.data()[I]);
  for (size_t I = 0; I < GFresh.DB3.size(); ++I)
    EXPECT_FLOAT_EQ(GReused.DB3[I], GFresh.DB3[I]);
}

TEST(Mlp, ForwardIsConstAndRepeatable) {
  std::mt19937 Rng(13);
  const Mlp Net(3, 8, 2, Rng); // const: forward must not touch the net
  Workspace A, B;
  std::vector<float> X = {0.1f, 0.2f, 0.3f};
  std::vector<float> First = Net.forward(X, A);
  Net.forward({-5, -5, -5}, A); // unrelated call through the same WS
  std::vector<float> Second = Net.forward(X, A);
  std::vector<float> Third = Net.forward(X, B);
  for (size_t I = 0; I < First.size(); ++I) {
    EXPECT_FLOAT_EQ(First[I], Second[I]);
    EXPECT_FLOAT_EQ(First[I], Third[I]);
  }
}

TEST(Mlp, ForwardBatchMatchesForwardBitwise) {
  // Each row of a batched forward must be bit-identical to the serial
  // forward of that row — the property the recognition predictBatch and
  // trainOnPairs determinism contracts are built on.
  std::mt19937 Rng(31);
  const Mlp Net(5, 12, 4, Rng);
  std::uniform_real_distribution<float> U(-1, 1);
  std::vector<std::vector<float>> X;
  for (int B = 0; B < 7; ++B) {
    std::vector<float> Row(5);
    for (float &V : Row)
      V = U(Rng);
    X.push_back(Row);
  }
  Workspace BatchWS, SerialWS;
  const Matrix &Y = Net.forwardBatch(X, BatchWS);
  ASSERT_EQ(Y.rows(), 7);
  ASSERT_EQ(Y.cols(), 4);
  for (int B = 0; B < 7; ++B) {
    const std::vector<float> &Ref = Net.forward(X[B], SerialWS);
    for (int I = 0; I < 4; ++I)
      EXPECT_EQ(Y.at(B, I), Ref[I]) << "row " << B << " logit " << I;
  }
  // Batch of one through the same (polluted) workspace: still exact.
  Workspace WS1;
  const Matrix &Y1 = Net.forwardBatch({X[3]}, WS1);
  const std::vector<float> &Ref = Net.forward(X[3], SerialWS);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Y1.at(0, I), Ref[I]);
}

TEST(Mlp, BackwardBatchMatchesPerExampleBitwise) {
  // backwardBatch must reproduce the old path exactly: one backward per
  // example into a fresh Gradients, then a fixed-order reduce. The GEMM
  // kernels accumulate in that same per-element order, so the batched
  // gradient is bit-identical, not merely close.
  std::mt19937 Rng(37);
  const Mlp Net(4, 10, 3, Rng);
  std::uniform_real_distribution<float> U(-1, 1);
  const int B = 5;
  std::vector<std::vector<float>> X;
  Matrix DLogits(B, 3);
  for (int Bi = 0; Bi < B; ++Bi) {
    std::vector<float> Row(4);
    for (float &V : Row)
      V = U(Rng);
    X.push_back(Row);
    for (int I = 0; I < 3; ++I)
      DLogits.at(Bi, I) = U(Rng);
  }
  // Zero one example's upstream gradient entirely: out-of-support
  // examples in trainOnPairs feed exactly this shape, and they must not
  // perturb the batch bitwise.
  for (int I = 0; I < 3; ++I)
    DLogits.at(2, I) = 0.0f;

  Workspace BatchWS;
  Net.forwardBatch(X, BatchWS);
  Gradients Batched(Net);
  Net.backwardBatch(DLogits, BatchWS, Batched);

  Gradients Reduced(Net);
  Workspace SerialWS;
  for (int Bi = 0; Bi < B; ++Bi) {
    Net.forward(X[Bi], SerialWS);
    Gradients One(Net);
    std::vector<float> DY(3);
    for (int I = 0; I < 3; ++I)
      DY[I] = DLogits.at(Bi, I);
    Net.backward(DY, SerialWS, One);
    Reduced.add(One);
  }

  auto BS = Batched.segments();
  auto RS = Reduced.segments();
  ASSERT_EQ(BS.size(), RS.size());
  for (size_t S = 0; S < BS.size(); ++S) {
    ASSERT_EQ(BS[S].Size, RS[S].Size);
    for (size_t I = 0; I < BS[S].Size; ++I)
      EXPECT_EQ(BS[S].Grad[I], RS[S].Grad[I])
          << "segment " << S << " param " << I;
  }
}

TEST(Mlp, BatchedBackwardMatchesFiniteDifference) {
  // Independent check that the batched backward computes a correct
  // gradient at all (not merely the same one as backward()): central
  // differences on the summed-logits loss over a 3-example batch.
  std::mt19937 Rng(41);
  Mlp Net(3, 6, 2, Rng);
  std::vector<std::vector<float>> X = {
      {0.2f, -0.7f, 1.1f}, {-0.4f, 0.9f, 0.3f}, {1.5f, 0.1f, -0.8f}};
  Workspace WS;
  auto Loss = [&] {
    const Matrix &Y = Net.forwardBatch(X, WS);
    float S = 0;
    for (size_t I = 0; I < Y.size(); ++I)
      S += Y.data()[I];
    return S;
  };
  Net.forwardBatch(X, WS);
  Matrix DLogits(3, 2);
  DLogits.fill(1.0f);
  Gradients G(Net);
  Net.backwardBatch(DLogits, WS, G);

  const float H = 1e-3f;
  auto Check = [&](float &Param, float Analytic) {
    float P0 = Param;
    Param = P0 + H;
    float Up = Loss();
    Param = P0 - H;
    float Down = Loss();
    Param = P0;
    EXPECT_NEAR(Analytic, (Up - Down) / (2 * H), 5e-2);
  };
  Check(Net.L1.W.at(1, 2), G.DW1.at(1, 2));
  Check(Net.L2.W.at(3, 4), G.DW2.at(3, 4));
  Check(Net.L3.W.at(1, 5), G.DW3.at(1, 5));
  Check(Net.L2.B[2], G.DB2[2]);
}

TEST(MatrixDeathTest, DimensionMismatchAsserts) {
  // Asserts stay on in every build type here (the top-level CMake strips
  // -DNDEBUG), so shape bugs die loudly everywhere, not just in Debug.
  // Shape bugs must die loudly in debug builds: the Into kernels hoist
  // their input-width checks to one assert per call.
  Matrix W(2, 3);
  std::vector<float> Wrong = {1.0f, 2.0f}; // needs 3
  std::vector<float> Y;
  EXPECT_DEATH(W.matvecInto(Wrong, Y), "matvec dimension mismatch");
  Matrix X(4, 2); // needs 4 × 3
  Matrix Out;
  EXPECT_DEATH(W.matmulInto(X, Out), "matmul dimension mismatch");
  Matrix XT(4, 3); // transposed path needs 4 × 2
  EXPECT_DEATH(W.matmulTransposedInto(XT, Out),
               "matmulTransposed dimension mismatch");
}

TEST(Gradients, AccumulateAndReduce) {
  std::mt19937 Rng(7);
  Mlp Net(2, 4, 2, Rng);
  Workspace WS;
  Net.forward({1.0f, -1.0f}, WS);
  Gradients A(Net), B(Net);
  Net.backward({1.0f, 0.0f}, WS, A);
  Net.forward({0.5f, 2.0f}, WS);
  Net.backward({0.0f, 1.0f}, WS, B);

  Gradients Sum(Net);
  Sum.add(A);
  Sum.add(B);
  for (size_t I = 0; I < Sum.DW1.size(); ++I)
    EXPECT_FLOAT_EQ(Sum.DW1.data()[I],
                    A.DW1.data()[I] + B.DW1.data()[I]);
  Sum.zero();
  for (size_t I = 0; I < Sum.DW1.size(); ++I)
    EXPECT_FLOAT_EQ(Sum.DW1.data()[I], 0.0f);

  size_t Total = 0;
  for (const Gradients::Segment &Seg : A.segments())
    Total += Seg.Size;
  EXPECT_EQ(Total, Net.parameterCount())
      << "gradient segments must mirror the parameter layout";
}

TEST(Adam, LearnsALinearMap) {
  std::mt19937 Rng(9);
  Mlp Net(2, 16, 1, Rng);
  Adam Opt(Net, 1e-2f);
  Workspace WS;
  Gradients G(Net);
  // Target: y = 2a - b.
  std::uniform_real_distribution<float> U(-1, 1);
  double FinalLoss = 0;
  for (int Step = 0; Step < 3000; ++Step) {
    float A = U(Rng), B = U(Rng);
    float Target = 2 * A - B;
    const std::vector<float> &Y = Net.forward({A, B}, WS);
    float Err = Y[0] - Target;
    Net.backward({2 * Err}, WS, G);
    Opt.step(G); // applies the update and zeroes G
    FinalLoss = Err * Err;
  }
  EXPECT_LT(FinalLoss, 0.05);
}

TEST(Mlp, ParameterSegmentsCoverEverything) {
  std::mt19937 Rng(2);
  Mlp Net(4, 8, 3, Rng);
  size_t Total = 0;
  for (const auto &Seg : Net.parameterSegments())
    Total += Seg.Size;
  EXPECT_EQ(Total, Net.parameterCount());
  EXPECT_EQ(Total, 4u * 8 + 8 + 8u * 8 + 8 + 8u * 3 + 3);
}
