# Empty dependencies file for dc_run.
# This may be replaced when dependencies are built.
