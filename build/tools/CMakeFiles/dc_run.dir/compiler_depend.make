# Empty compiler generated dependencies file for dc_run.
# This may be replaced when dependencies are built.
