file(REMOVE_RECURSE
  "CMakeFiles/dc_run.dir/dc_run.cpp.o"
  "CMakeFiles/dc_run.dir/dc_run.cpp.o.d"
  "dc_run"
  "dc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
