# Empty compiler generated dependencies file for dc_tests.
# This may be replaced when dependencies are built.
