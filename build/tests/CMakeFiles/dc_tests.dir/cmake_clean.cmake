file(REMOVE_RECURSE
  "CMakeFiles/dc_tests.dir/core/EnumerationTest.cpp.o"
  "CMakeFiles/dc_tests.dir/core/EnumerationTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/core/EvaluatorTest.cpp.o"
  "CMakeFiles/dc_tests.dir/core/EvaluatorTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/core/GrammarTest.cpp.o"
  "CMakeFiles/dc_tests.dir/core/GrammarTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/core/ProgramTest.cpp.o"
  "CMakeFiles/dc_tests.dir/core/ProgramTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/core/PropertyTest.cpp.o"
  "CMakeFiles/dc_tests.dir/core/PropertyTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/core/RecognitionTest.cpp.o"
  "CMakeFiles/dc_tests.dir/core/RecognitionTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/core/SamplingTest.cpp.o"
  "CMakeFiles/dc_tests.dir/core/SamplingTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/core/SerializationTest.cpp.o"
  "CMakeFiles/dc_tests.dir/core/SerializationTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/core/TypeTest.cpp.o"
  "CMakeFiles/dc_tests.dir/core/TypeTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/core/WakeSleepTest.cpp.o"
  "CMakeFiles/dc_tests.dir/core/WakeSleepTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/domains/DomainsTest.cpp.o"
  "CMakeFiles/dc_tests.dir/domains/DomainsTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/nn/NnTest.cpp.o"
  "CMakeFiles/dc_tests.dir/nn/NnTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/vs/CompressionTest.cpp.o"
  "CMakeFiles/dc_tests.dir/vs/CompressionTest.cpp.o.d"
  "CMakeFiles/dc_tests.dir/vs/VersionSpaceTest.cpp.o"
  "CMakeFiles/dc_tests.dir/vs/VersionSpaceTest.cpp.o.d"
  "dc_tests"
  "dc_tests.pdb"
  "dc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
