
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/EnumerationTest.cpp" "tests/CMakeFiles/dc_tests.dir/core/EnumerationTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/core/EnumerationTest.cpp.o.d"
  "/root/repo/tests/core/EvaluatorTest.cpp" "tests/CMakeFiles/dc_tests.dir/core/EvaluatorTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/core/EvaluatorTest.cpp.o.d"
  "/root/repo/tests/core/GrammarTest.cpp" "tests/CMakeFiles/dc_tests.dir/core/GrammarTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/core/GrammarTest.cpp.o.d"
  "/root/repo/tests/core/ProgramTest.cpp" "tests/CMakeFiles/dc_tests.dir/core/ProgramTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/core/ProgramTest.cpp.o.d"
  "/root/repo/tests/core/PropertyTest.cpp" "tests/CMakeFiles/dc_tests.dir/core/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/core/PropertyTest.cpp.o.d"
  "/root/repo/tests/core/RecognitionTest.cpp" "tests/CMakeFiles/dc_tests.dir/core/RecognitionTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/core/RecognitionTest.cpp.o.d"
  "/root/repo/tests/core/SamplingTest.cpp" "tests/CMakeFiles/dc_tests.dir/core/SamplingTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/core/SamplingTest.cpp.o.d"
  "/root/repo/tests/core/SerializationTest.cpp" "tests/CMakeFiles/dc_tests.dir/core/SerializationTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/core/SerializationTest.cpp.o.d"
  "/root/repo/tests/core/TypeTest.cpp" "tests/CMakeFiles/dc_tests.dir/core/TypeTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/core/TypeTest.cpp.o.d"
  "/root/repo/tests/core/WakeSleepTest.cpp" "tests/CMakeFiles/dc_tests.dir/core/WakeSleepTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/core/WakeSleepTest.cpp.o.d"
  "/root/repo/tests/domains/DomainsTest.cpp" "tests/CMakeFiles/dc_tests.dir/domains/DomainsTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/domains/DomainsTest.cpp.o.d"
  "/root/repo/tests/nn/NnTest.cpp" "tests/CMakeFiles/dc_tests.dir/nn/NnTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/nn/NnTest.cpp.o.d"
  "/root/repo/tests/vs/CompressionTest.cpp" "tests/CMakeFiles/dc_tests.dir/vs/CompressionTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/vs/CompressionTest.cpp.o.d"
  "/root/repo/tests/vs/VersionSpaceTest.cpp" "tests/CMakeFiles/dc_tests.dir/vs/VersionSpaceTest.cpp.o" "gcc" "tests/CMakeFiles/dc_tests.dir/vs/VersionSpaceTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dc_wakesleep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dc_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dc_recognition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dc_vs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
