file(REMOVE_RECURSE
  "CMakeFiles/dc_core.dir/core/ContextualGrammar.cpp.o"
  "CMakeFiles/dc_core.dir/core/ContextualGrammar.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/Enumeration.cpp.o"
  "CMakeFiles/dc_core.dir/core/Enumeration.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/Evaluator.cpp.o"
  "CMakeFiles/dc_core.dir/core/Evaluator.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/Grammar.cpp.o"
  "CMakeFiles/dc_core.dir/core/Grammar.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/LikelihoodSummary.cpp.o"
  "CMakeFiles/dc_core.dir/core/LikelihoodSummary.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/Primitives.cpp.o"
  "CMakeFiles/dc_core.dir/core/Primitives.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/Program.cpp.o"
  "CMakeFiles/dc_core.dir/core/Program.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/ProgramParser.cpp.o"
  "CMakeFiles/dc_core.dir/core/ProgramParser.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/Sampling.cpp.o"
  "CMakeFiles/dc_core.dir/core/Sampling.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/Serialization.cpp.o"
  "CMakeFiles/dc_core.dir/core/Serialization.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/Task.cpp.o"
  "CMakeFiles/dc_core.dir/core/Task.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/Type.cpp.o"
  "CMakeFiles/dc_core.dir/core/Type.cpp.o.d"
  "CMakeFiles/dc_core.dir/core/Value.cpp.o"
  "CMakeFiles/dc_core.dir/core/Value.cpp.o.d"
  "libdc_core.a"
  "libdc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
