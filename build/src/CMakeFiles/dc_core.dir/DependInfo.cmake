
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ContextualGrammar.cpp" "src/CMakeFiles/dc_core.dir/core/ContextualGrammar.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/ContextualGrammar.cpp.o.d"
  "/root/repo/src/core/Enumeration.cpp" "src/CMakeFiles/dc_core.dir/core/Enumeration.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/Enumeration.cpp.o.d"
  "/root/repo/src/core/Evaluator.cpp" "src/CMakeFiles/dc_core.dir/core/Evaluator.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/Evaluator.cpp.o.d"
  "/root/repo/src/core/Grammar.cpp" "src/CMakeFiles/dc_core.dir/core/Grammar.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/Grammar.cpp.o.d"
  "/root/repo/src/core/LikelihoodSummary.cpp" "src/CMakeFiles/dc_core.dir/core/LikelihoodSummary.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/LikelihoodSummary.cpp.o.d"
  "/root/repo/src/core/Primitives.cpp" "src/CMakeFiles/dc_core.dir/core/Primitives.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/Primitives.cpp.o.d"
  "/root/repo/src/core/Program.cpp" "src/CMakeFiles/dc_core.dir/core/Program.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/Program.cpp.o.d"
  "/root/repo/src/core/ProgramParser.cpp" "src/CMakeFiles/dc_core.dir/core/ProgramParser.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/ProgramParser.cpp.o.d"
  "/root/repo/src/core/Sampling.cpp" "src/CMakeFiles/dc_core.dir/core/Sampling.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/Sampling.cpp.o.d"
  "/root/repo/src/core/Serialization.cpp" "src/CMakeFiles/dc_core.dir/core/Serialization.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/Serialization.cpp.o.d"
  "/root/repo/src/core/Task.cpp" "src/CMakeFiles/dc_core.dir/core/Task.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/Task.cpp.o.d"
  "/root/repo/src/core/Type.cpp" "src/CMakeFiles/dc_core.dir/core/Type.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/Type.cpp.o.d"
  "/root/repo/src/core/Value.cpp" "src/CMakeFiles/dc_core.dir/core/Value.cpp.o" "gcc" "src/CMakeFiles/dc_core.dir/core/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
