file(REMOVE_RECURSE
  "CMakeFiles/dc_domains.dir/domains/ListDomain.cpp.o"
  "CMakeFiles/dc_domains.dir/domains/ListDomain.cpp.o.d"
  "CMakeFiles/dc_domains.dir/domains/LogoDomain.cpp.o"
  "CMakeFiles/dc_domains.dir/domains/LogoDomain.cpp.o.d"
  "CMakeFiles/dc_domains.dir/domains/OrigamiDomain.cpp.o"
  "CMakeFiles/dc_domains.dir/domains/OrigamiDomain.cpp.o.d"
  "CMakeFiles/dc_domains.dir/domains/PhysicsDomain.cpp.o"
  "CMakeFiles/dc_domains.dir/domains/PhysicsDomain.cpp.o.d"
  "CMakeFiles/dc_domains.dir/domains/RegexDomain.cpp.o"
  "CMakeFiles/dc_domains.dir/domains/RegexDomain.cpp.o.d"
  "CMakeFiles/dc_domains.dir/domains/RegressionDomain.cpp.o"
  "CMakeFiles/dc_domains.dir/domains/RegressionDomain.cpp.o.d"
  "CMakeFiles/dc_domains.dir/domains/TextDomain.cpp.o"
  "CMakeFiles/dc_domains.dir/domains/TextDomain.cpp.o.d"
  "CMakeFiles/dc_domains.dir/domains/TowerDomain.cpp.o"
  "CMakeFiles/dc_domains.dir/domains/TowerDomain.cpp.o.d"
  "libdc_domains.a"
  "libdc_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
