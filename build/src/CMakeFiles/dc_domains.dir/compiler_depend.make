# Empty compiler generated dependencies file for dc_domains.
# This may be replaced when dependencies are built.
