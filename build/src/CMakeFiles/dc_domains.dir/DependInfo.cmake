
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/domains/ListDomain.cpp" "src/CMakeFiles/dc_domains.dir/domains/ListDomain.cpp.o" "gcc" "src/CMakeFiles/dc_domains.dir/domains/ListDomain.cpp.o.d"
  "/root/repo/src/domains/LogoDomain.cpp" "src/CMakeFiles/dc_domains.dir/domains/LogoDomain.cpp.o" "gcc" "src/CMakeFiles/dc_domains.dir/domains/LogoDomain.cpp.o.d"
  "/root/repo/src/domains/OrigamiDomain.cpp" "src/CMakeFiles/dc_domains.dir/domains/OrigamiDomain.cpp.o" "gcc" "src/CMakeFiles/dc_domains.dir/domains/OrigamiDomain.cpp.o.d"
  "/root/repo/src/domains/PhysicsDomain.cpp" "src/CMakeFiles/dc_domains.dir/domains/PhysicsDomain.cpp.o" "gcc" "src/CMakeFiles/dc_domains.dir/domains/PhysicsDomain.cpp.o.d"
  "/root/repo/src/domains/RegexDomain.cpp" "src/CMakeFiles/dc_domains.dir/domains/RegexDomain.cpp.o" "gcc" "src/CMakeFiles/dc_domains.dir/domains/RegexDomain.cpp.o.d"
  "/root/repo/src/domains/RegressionDomain.cpp" "src/CMakeFiles/dc_domains.dir/domains/RegressionDomain.cpp.o" "gcc" "src/CMakeFiles/dc_domains.dir/domains/RegressionDomain.cpp.o.d"
  "/root/repo/src/domains/TextDomain.cpp" "src/CMakeFiles/dc_domains.dir/domains/TextDomain.cpp.o" "gcc" "src/CMakeFiles/dc_domains.dir/domains/TextDomain.cpp.o.d"
  "/root/repo/src/domains/TowerDomain.cpp" "src/CMakeFiles/dc_domains.dir/domains/TowerDomain.cpp.o" "gcc" "src/CMakeFiles/dc_domains.dir/domains/TowerDomain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dc_recognition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dc_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
