file(REMOVE_RECURSE
  "libdc_domains.a"
)
