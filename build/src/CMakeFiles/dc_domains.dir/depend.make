# Empty dependencies file for dc_domains.
# This may be replaced when dependencies are built.
