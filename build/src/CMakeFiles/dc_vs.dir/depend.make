# Empty dependencies file for dc_vs.
# This may be replaced when dependencies are built.
