file(REMOVE_RECURSE
  "libdc_vs.a"
)
