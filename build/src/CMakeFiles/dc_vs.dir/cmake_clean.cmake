file(REMOVE_RECURSE
  "CMakeFiles/dc_vs.dir/vs/Compression.cpp.o"
  "CMakeFiles/dc_vs.dir/vs/Compression.cpp.o.d"
  "CMakeFiles/dc_vs.dir/vs/VersionSpace.cpp.o"
  "CMakeFiles/dc_vs.dir/vs/VersionSpace.cpp.o.d"
  "libdc_vs.a"
  "libdc_vs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_vs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
