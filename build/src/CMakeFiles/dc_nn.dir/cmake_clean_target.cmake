file(REMOVE_RECURSE
  "libdc_nn.a"
)
