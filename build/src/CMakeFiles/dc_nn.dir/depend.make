# Empty dependencies file for dc_nn.
# This may be replaced when dependencies are built.
