
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/Layers.cpp" "src/CMakeFiles/dc_nn.dir/nn/Layers.cpp.o" "gcc" "src/CMakeFiles/dc_nn.dir/nn/Layers.cpp.o.d"
  "/root/repo/src/nn/Optimizer.cpp" "src/CMakeFiles/dc_nn.dir/nn/Optimizer.cpp.o" "gcc" "src/CMakeFiles/dc_nn.dir/nn/Optimizer.cpp.o.d"
  "/root/repo/src/nn/Tensor.cpp" "src/CMakeFiles/dc_nn.dir/nn/Tensor.cpp.o" "gcc" "src/CMakeFiles/dc_nn.dir/nn/Tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
