file(REMOVE_RECURSE
  "CMakeFiles/dc_nn.dir/nn/Layers.cpp.o"
  "CMakeFiles/dc_nn.dir/nn/Layers.cpp.o.d"
  "CMakeFiles/dc_nn.dir/nn/Optimizer.cpp.o"
  "CMakeFiles/dc_nn.dir/nn/Optimizer.cpp.o.d"
  "CMakeFiles/dc_nn.dir/nn/Tensor.cpp.o"
  "CMakeFiles/dc_nn.dir/nn/Tensor.cpp.o.d"
  "libdc_nn.a"
  "libdc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
