# Empty dependencies file for dc_wakesleep.
# This may be replaced when dependencies are built.
