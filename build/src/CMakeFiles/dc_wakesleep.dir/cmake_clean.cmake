file(REMOVE_RECURSE
  "CMakeFiles/dc_wakesleep.dir/core/WakeSleep.cpp.o"
  "CMakeFiles/dc_wakesleep.dir/core/WakeSleep.cpp.o.d"
  "libdc_wakesleep.a"
  "libdc_wakesleep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_wakesleep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
