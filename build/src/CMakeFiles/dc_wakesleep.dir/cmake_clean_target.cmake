file(REMOVE_RECURSE
  "libdc_wakesleep.a"
)
