file(REMOVE_RECURSE
  "libdc_recognition.a"
)
