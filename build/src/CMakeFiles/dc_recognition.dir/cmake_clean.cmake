file(REMOVE_RECURSE
  "CMakeFiles/dc_recognition.dir/core/Featurizer.cpp.o"
  "CMakeFiles/dc_recognition.dir/core/Featurizer.cpp.o.d"
  "CMakeFiles/dc_recognition.dir/core/Recognition.cpp.o"
  "CMakeFiles/dc_recognition.dir/core/Recognition.cpp.o.d"
  "libdc_recognition.a"
  "libdc_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
