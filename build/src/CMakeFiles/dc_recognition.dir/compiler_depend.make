# Empty compiler generated dependencies file for dc_recognition.
# This may be replaced when dependencies are built.
