file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_physics.dir/bench_fig11_physics.cpp.o"
  "CMakeFiles/bench_fig11_physics.dir/bench_fig11_physics.cpp.o.d"
  "bench_fig11_physics"
  "bench_fig11_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
