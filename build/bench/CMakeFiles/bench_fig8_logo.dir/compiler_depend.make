# Empty compiler generated dependencies file for bench_fig8_logo.
# This may be replaced when dependencies are built.
