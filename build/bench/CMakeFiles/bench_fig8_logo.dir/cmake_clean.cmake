file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_logo.dir/bench_fig8_logo.cpp.o"
  "CMakeFiles/bench_fig8_logo.dir/bench_fig8_logo.cpp.o.d"
  "bench_fig8_logo"
  "bench_fig8_logo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_logo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
