file(REMOVE_RECURSE
  "CMakeFiles/bench_speedup_minibatch.dir/bench_speedup_minibatch.cpp.o"
  "CMakeFiles/bench_speedup_minibatch.dir/bench_speedup_minibatch.cpp.o.d"
  "bench_speedup_minibatch"
  "bench_speedup_minibatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup_minibatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
