# Empty dependencies file for bench_speedup_minibatch.
# This may be replaced when dependencies are built.
