file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_towers.dir/bench_fig9_towers.cpp.o"
  "CMakeFiles/bench_fig9_towers.dir/bench_fig9_towers.cpp.o.d"
  "bench_fig9_towers"
  "bench_fig9_towers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_towers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
