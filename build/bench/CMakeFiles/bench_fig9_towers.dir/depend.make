# Empty dependencies file for bench_fig9_towers.
# This may be replaced when dependencies are built.
