file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_regex.dir/bench_fig10_regex.cpp.o"
  "CMakeFiles/bench_fig10_regex.dir/bench_fig10_regex.cpp.o.d"
  "bench_fig10_regex"
  "bench_fig10_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
