# Empty compiler generated dependencies file for bench_fig10_regex.
# This may be replaced when dependencies are built.
