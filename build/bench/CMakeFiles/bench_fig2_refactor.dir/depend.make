# Empty dependencies file for bench_fig2_refactor.
# This may be replaced when dependencies are built.
