file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_refactor.dir/bench_fig2_refactor.cpp.o"
  "CMakeFiles/bench_fig2_refactor.dir/bench_fig2_refactor.cpp.o.d"
  "bench_fig2_refactor"
  "bench_fig2_refactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_refactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
