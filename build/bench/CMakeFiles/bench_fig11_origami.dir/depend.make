# Empty dependencies file for bench_fig11_origami.
# This may be replaced when dependencies are built.
