file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_origami.dir/bench_fig11_origami.cpp.o"
  "CMakeFiles/bench_fig11_origami.dir/bench_fig11_origami.cpp.o.d"
  "bench_fig11_origami"
  "bench_fig11_origami.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_origami.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
