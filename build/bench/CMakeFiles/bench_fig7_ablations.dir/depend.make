# Empty dependencies file for bench_fig7_ablations.
# This may be replaced when dependencies are built.
