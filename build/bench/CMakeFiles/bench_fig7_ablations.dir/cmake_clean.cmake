file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ablations.dir/bench_fig7_ablations.cpp.o"
  "CMakeFiles/bench_fig7_ablations.dir/bench_fig7_ablations.cpp.o.d"
  "bench_fig7_ablations"
  "bench_fig7_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
