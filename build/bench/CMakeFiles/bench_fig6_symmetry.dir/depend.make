# Empty dependencies file for bench_fig6_symmetry.
# This may be replaced when dependencies are built.
