# Empty compiler generated dependencies file for bench_fig20_solve_times.
# This may be replaced when dependencies are built.
