# Empty compiler generated dependencies file for bench_fig5_vs_ops.
# This may be replaced when dependencies are built.
