file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_vs_ops.dir/bench_fig5_vs_ops.cpp.o"
  "CMakeFiles/bench_fig5_vs_ops.dir/bench_fig5_vs_ops.cpp.o.d"
  "bench_fig5_vs_ops"
  "bench_fig5_vs_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_vs_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
