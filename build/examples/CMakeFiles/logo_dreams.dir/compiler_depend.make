# Empty compiler generated dependencies file for logo_dreams.
# This may be replaced when dependencies are built.
