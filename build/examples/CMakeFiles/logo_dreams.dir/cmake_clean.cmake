file(REMOVE_RECURSE
  "CMakeFiles/logo_dreams.dir/logo_dreams.cpp.o"
  "CMakeFiles/logo_dreams.dir/logo_dreams.cpp.o.d"
  "logo_dreams"
  "logo_dreams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logo_dreams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
