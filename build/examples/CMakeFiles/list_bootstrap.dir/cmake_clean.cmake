file(REMOVE_RECURSE
  "CMakeFiles/list_bootstrap.dir/list_bootstrap.cpp.o"
  "CMakeFiles/list_bootstrap.dir/list_bootstrap.cpp.o.d"
  "list_bootstrap"
  "list_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
