# Empty dependencies file for list_bootstrap.
# This may be replaced when dependencies are built.
