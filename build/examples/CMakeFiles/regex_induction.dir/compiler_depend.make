# Empty compiler generated dependencies file for regex_induction.
# This may be replaced when dependencies are built.
