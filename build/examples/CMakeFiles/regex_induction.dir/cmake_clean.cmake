file(REMOVE_RECURSE
  "CMakeFiles/regex_induction.dir/regex_induction.cpp.o"
  "CMakeFiles/regex_induction.dir/regex_induction.cpp.o.d"
  "regex_induction"
  "regex_induction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_induction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
